package harness

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/verify"
)

// partitionKeys returns one probe key per partition of c's placement
// map, hashing candidate names until every partition has one.
func partitionKeys(t *testing.T, c *core.Cluster) []string {
	t.Helper()
	pm := c.PlacementMap()
	keys := make([]string, c.Partitions())
	found := 0
	for i := 0; found < len(keys); i++ {
		if i > 10000 {
			t.Fatalf("no key landed in some partition after %d candidates", i)
		}
		k := fmt.Sprintf("k%04d", i)
		if p := pm.Of(k); keys[p] == "" {
			keys[p] = k
			found++
		}
	}
	return keys
}

// TestPartitionedKillOnePartition is the partitioned chaos gate: kill
// the active coordinator exactly as PARTITION 0's sweep completes
// phase 2 (mid-advancement — vu switched, update quiescence done), and
// require that partition 1 keeps advancing while partition 0's
// interrupted cycle is still in takeover, that a standby finishes
// partition 0's sweep under a higher term, that the per-partition
// convergence audit passes, and that no acknowledged update in either
// partition is lost.
func TestPartitionedKillOnePartition(t *testing.T) {
	const nparts = 2
	c, err := core.NewCluster(core.Config{
		Nodes:          3,
		Partitions:     nparts,
		Reliable:       true,
		Failover:       true,
		ResendInterval: 5 * time.Millisecond,
		AckTimeout:     30 * time.Second,
		FailoverConfig: core.FailoverConfig{
			LeaseInterval: 10 * time.Millisecond,
			LeaseTimeout:  40 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := partitionKeys(t, c)
	pm := c.PlacementMap()
	for p, key := range keys {
		rec := model.NewRecord()
		rec.Fields["bal"] = 0
		c.Preload(pm.Primary(p), key, rec)
	}
	c.Start()
	defer c.Close()

	// Acknowledged updates in both partitions before the chaos window.
	want := map[string]int64{}
	for i := 0; i < 20; i++ {
		p := i % nparts
		h, serr := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node:    pm.Primary(p),
			Updates: []model.KeyOp{{Key: keys[p], Op: model.AddOp{Field: "bal", Delta: 1}}},
		}})
		if serr != nil {
			t.Fatal(serr)
		}
		if !h.WaitTimeout(30 * time.Second) {
			t.Fatal("update timed out before the chaos window even opened")
		}
		want[keys[p]]++
	}

	killCh := ArmPartPhaseKill(c, 0, 2)
	rep := c.AdvancePartition(0)
	if !rep.Interrupted {
		t.Fatalf("partition 0's sweep survived the coordinator kill: %+v", rep)
	}
	var kill FailoverKill
	select {
	case kill = <-killCh:
	case <-time.After(5 * time.Second):
		t.Fatal("chaos kill never fired")
	}
	if kill.Part != 0 || kill.Phase != 2 {
		t.Fatalf("killed at partition %d phase %d, armed for partition 0 phase 2", kill.Part, kill.Phase)
	}

	// The other partition must keep advancing: drive partition 1's
	// sweep to completion while partition 0's interrupted cycle is
	// still being detected and recovered, tolerating the takeover
	// transients (no routed coordinator yet, or a deposed one).
	deadline := time.Now().Add(15 * time.Second)
	for {
		rep1 := c.AdvancePartition(1)
		if !rep1.Interrupted {
			if rep1.Part != 1 || rep1.NewVR < 1 {
				t.Fatalf("partition 1's sweep completed oddly: %+v", rep1)
			}
			break
		}
		if !errors.Is(rep1.Err, core.ErrStaleTerm) &&
			!errors.Is(rep1.Err, core.ErrNoCoordinator) &&
			!errors.Is(rep1.Err, core.ErrCrashed) {
			t.Fatalf("partition 1's sweep failed with %v while partition 0 recovered", rep1.Err)
		}
		if time.Now().After(deadline) {
			t.Fatal("partition 1 could not advance while partition 0's takeover was in flight")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Partition 0's interrupted sweep must finish under the successor's
	// higher term (AwaitTakeover audits partition 0's version pair).
	tr, err := AwaitTakeover(c, kill.Term, 1, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NewTerm <= kill.Term {
		t.Fatalf("takeover term %d not above killed term %d", tr.NewTerm, kill.Term)
	}
	if errs := GateErrors(c, 10*time.Second); len(errs) != 0 {
		t.Fatalf("gate failed after the partition-0 kill: %v", errs)
	}
	if prep := verify.CheckPartitions(c); !prep.OK() {
		t.Fatalf("per-partition audit failed: %v", prep.Violations)
	}

	// Nothing acknowledged lost in either partition.
	for p, key := range keys {
		h, serr := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node:  pm.Primary(p),
			Reads: []string{key},
		}})
		if serr != nil {
			t.Fatal(serr)
		}
		if !h.WaitTimeout(30 * time.Second) {
			t.Fatal("read timed out after takeover")
		}
		reads := h.Reads()
		if len(reads) != 1 || reads[0].Record == nil {
			t.Fatalf("read of %q returned %+v", key, reads)
		}
		if got := reads[0].Record.Field("bal"); got != want[key] {
			t.Fatalf("acknowledged updates lost: %q has bal %d, want %d", key, got, want[key])
		}
	}

	// The successor must keep advancing every partition.
	if rep2 := c.Advance(); rep2.Interrupted {
		t.Fatalf("successor's full sweep failed: %v", rep2.Err)
	}
}
