package harness

// Crashpoints let an external driver kill a process at a named point
// in its execution, deterministically — the in-process half of the
// kill -9 crash harness. The multiproc integration tests set
// THREEV_CRASHPOINT on a child node and drive a workload; the child
// dies exactly where the test wants it to, instead of wherever an
// asynchronous SIGKILL happens to land.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// CrashEnv is the environment variable naming the armed crashpoint:
// "name" fires on the first hit, "name:N" on the Nth (1-based).
const CrashEnv = "THREEV_CRASHPOINT"

// CrashExitCode mimics a SIGKILL death (128+9) so drivers cannot
// mistake a crashpoint for a graceful exit.
const CrashExitCode = 137

var crashHits sync.Map // name -> *atomic.Int64

// MaybeCrash terminates the process with CrashExitCode if the
// crashpoint named by CrashEnv matches name and this is its designated
// hit. A no-op (one Getenv) when the variable is unset, so calls can
// stay in production paths.
func MaybeCrash(name string) {
	spec := os.Getenv(CrashEnv)
	if spec == "" {
		return
	}
	armed, countStr, _ := strings.Cut(spec, ":")
	if armed != name {
		return
	}
	want := int64(1)
	if countStr != "" {
		v, err := strconv.ParseInt(countStr, 10, 64)
		if err != nil || v <= 0 {
			return
		}
		want = v
	}
	c, _ := crashHits.LoadOrStore(name, new(atomic.Int64))
	if c.(*atomic.Int64).Add(1) == want {
		fmt.Fprintf(os.Stderr, "crashpoint %q hit %d: dying\n", name, want)
		os.Exit(CrashExitCode)
	}
}
