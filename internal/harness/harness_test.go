package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/baseline/nocoord"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

func TestHistoQuantiles(t *testing.T) {
	var h Histo
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
	if got := h.Quantile(0.5); got < 45*time.Millisecond || got > 55*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
	// Adding after sorting re-sorts correctly.
	h.Add(time.Millisecond / 2)
	if got := h.Quantile(0); got != time.Millisecond/2 {
		t.Errorf("min after late add = %v", got)
	}
}

func TestRunAgainst3V(t *testing.T) {
	c, err := core.NewCluster(core.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()
	sys := baseline.ThreeV{Cluster: c}
	gen := workload.New(workload.Config{Nodes: 3, Groups: 16, Span: 2, ReadFraction: 0.3, Seed: 42})
	res := Run(sys, RunConfig{
		Txns:            200,
		Concurrency:     4,
		AdvanceInterval: time.Millisecond,
		FinalAdvance:    true,
		Gen:             gen,
		Preload: func(node model.NodeID, key string) {
			rec := model.NewRecord()
			rec.Fields["bal"] = 0
			rec.Fields["count"] = 0
			c.Preload(node, key, rec)
		},
	})
	if res.Completed != 200 || res.TimedOut != 0 {
		t.Fatalf("completed %d, timed out %d", res.Completed, res.TimedOut)
	}
	if res.Updates == 0 || res.Reads == 0 {
		t.Errorf("kind counts: updates=%d reads=%d", res.Updates, res.Reads)
	}
	if res.Anomalies != 0 {
		t.Errorf("3V produced %d anomalies", res.Anomalies)
	}
	if res.AuditedReads != res.Reads {
		t.Errorf("audited %d of %d reads", res.AuditedReads, res.Reads)
	}
	if res.Throughput() <= 0 {
		t.Error("zero throughput")
	}
	if res.LatAll.N() != res.Completed {
		t.Errorf("latency samples %d != completed %d", res.LatAll.N(), res.Completed)
	}
	if res.Advances == 0 && res.Duration > 3*time.Millisecond {
		t.Error("background advancement never ran despite a long run")
	}
	if vio := c.Violations(); vio != nil {
		t.Errorf("violations: %v", vio)
	}
}

func TestRunAgainstNoCoordFindsAnomaliesEventually(t *testing.T) {
	// Smoke test: the harness runs against a baseline system and audits
	// reads. (Anomaly presence is probabilistic; asserted in E3.)
	sys, err := nocoord.New(nocoord.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	gen := workload.New(workload.Config{Nodes: 3, Groups: 8, Span: 2, ReadFraction: 0.5, Seed: 7})
	res := Run(sys, RunConfig{
		Txns:        150,
		Concurrency: 6,
		Gen:         gen,
		Preload: func(node model.NodeID, key string) {
			sys.Preload(node, key, model.NewRecord())
		},
	})
	if res.Completed != 150 {
		t.Fatalf("completed %d of 150", res.Completed)
	}
	if res.System != "NoCoord" {
		t.Errorf("system name = %q", res.System)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"a", "bbbb"}}
	tb.Add("1", "2")
	tb.Add("333", "4")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "333") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestFormatHelpers(t *testing.T) {
	if Ms(1500*time.Microsecond) != "1.500" {
		t.Errorf("Ms = %q", Ms(1500*time.Microsecond))
	}
	if F2(1.236) != "1.24" {
		t.Errorf("F2 = %q", F2(1.236))
	}
}

func TestStalenessAccounting(t *testing.T) {
	// With advancement only at the end, reads during the load see count
	// 0 while updates commit — staleness must be positive.
	c, err := core.NewCluster(core.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()
	sys := baseline.ThreeV{Cluster: c}
	gen := workload.New(workload.Config{Nodes: 2, Groups: 2, Span: 2, ReadFraction: 0.4, Seed: 13})
	res := Run(sys, RunConfig{
		Txns:        120,
		Concurrency: 2, // serialize enough that reads trail updates
		Gen:         gen,
		Preload: func(node model.NodeID, key string) {
			c.Preload(node, key, model.NewRecord())
		},
	})
	if res.Reads > 0 && res.StalenessMean == 0 && res.StalenessMax == 0 {
		t.Error("no staleness measured without advancement — accounting broken")
	}
}
