package harness

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/transport"
	"repro/internal/verify"
)

// TestReplicatedKillPartitionPrimary is the replica-group chaos gate:
// with two-partition placement over three nodes and replication on,
// isolate partition 1's placement primary mid-traffic (both directions,
// node and coordinator endpoints — the in-process stand-in for kill -9)
// and require that
//
//   - the replication lease promotes the next live owner within a
//     bounded window,
//   - every acknowledged update stays readable from the promoted
//     backup while the old primary is gone,
//   - new updates keep committing through the promoted primary,
//   - after healing, the deposed primary catches up from the
//     retransmitted stream and the convergence audit (versions agreed,
//     counters balanced, per-partition invariants) passes.
func TestReplicatedKillPartitionPrimary(t *testing.T) {
	const nparts = 2
	c, err := core.NewCluster(core.Config{
		Nodes:          3,
		Partitions:     nparts,
		Reliable:       true,
		Replicate:      true,
		Failover:       true,
		ResendInterval: 5 * time.Millisecond,
		AckTimeout:     30 * time.Second,
		FailoverConfig: core.FailoverConfig{
			LeaseInterval: 10 * time.Millisecond,
			LeaseTimeout:  40 * time.Millisecond,
		},
		ReplicaConfig: core.ReplicaConfig{
			LeaseInterval: 10 * time.Millisecond,
			LeaseTimeout:  40 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := partitionKeys(t, c)
	pm := c.PlacementMap()
	// Replicated placement: every owner of a partition preloads its
	// probe key, so a promoted backup serves version-0 reads too.
	for p, key := range keys {
		for _, o := range pm.OwnerSet(p) {
			rec := model.NewRecord()
			rec.Fields["bal"] = 0
			c.Preload(o, key, rec)
		}
	}
	c.Start()
	defer c.Close()

	fi, ok := c.Network().(transport.FaultInjector)
	if !ok {
		t.Fatal("cluster network does not support fault injection")
	}

	victim := pm.Primary(1) // partition 1's placement primary
	owners := pm.OwnerSet(1)
	if len(owners) < 2 {
		t.Fatalf("partition 1 has %d owners, need at least 2", len(owners))
	}

	submit := func(node model.NodeID, key string) {
		t.Helper()
		h, serr := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node:    node,
			Updates: []model.KeyOp{{Key: key, Op: model.AddOp{Field: "bal", Delta: 1}}},
		}})
		if serr != nil {
			t.Fatal(serr)
		}
		if !h.WaitTimeout(30 * time.Second) {
			t.Fatalf("update of %q at node %d timed out", key, node)
		}
	}
	read := func(node model.NodeID, key string) int64 {
		t.Helper()
		h, serr := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node:  node,
			Reads: []string{key},
		}})
		if serr != nil {
			t.Fatal(serr)
		}
		if !h.WaitTimeout(30 * time.Second) {
			t.Fatalf("read of %q at node %d timed out", key, node)
		}
		reads := h.Reads()
		if len(reads) != 1 || reads[0].Record == nil {
			t.Fatalf("read of %q at node %d returned %+v", key, node, reads)
		}
		return reads[0].Record.Field("bal")
	}

	// Acknowledged traffic in both partitions, then advance so the
	// updates become readable (vr reaches the version they ran at).
	want := map[string]int64{}
	for i := 0; i < 20; i++ {
		p := i % nparts
		submit(pm.Primary(p), keys[p])
		want[keys[p]]++
	}
	if rep := c.Advance(); rep.Interrupted {
		t.Fatalf("pre-kill advancement failed: %v", rep.Err)
	}

	// The replicated state must already be readable at a backup, not
	// just the primary — that is the availability the stream buys.
	backup := owners[1]
	if got := read(backup, keys[1]); got != want[keys[1]] {
		t.Fatalf("backup %d serves bal %d for %q, want %d (replication lagging acknowledged updates)",
			backup, got, keys[1], want[keys[1]])
	}

	// Kill: cut both of the victim's endpoints (node and its standby
	// coordinator endpoint) in both directions.
	endpoints := 2 * c.NumNodes()
	victimEPs := []model.NodeID{victim, model.NodeID(c.NumNodes() + int(victim))}
	for _, v := range victimEPs {
		for e := 0; e < endpoints; e++ {
			ep := model.NodeID(e)
			if ep == victimEPs[0] || ep == victimEPs[1] {
				continue
			}
			fi.Partition(v, ep)
			fi.Partition(ep, v)
		}
	}

	// Promotion within a bounded window: the next live owner must take
	// the lease and routing must follow. The window is one lease
	// timeout plus the staggers and a heartbeat propagation margin; 2s
	// is orders of magnitude above it and still fails fast.
	var promoted model.NodeID
	deadline := time.Now().Add(2 * time.Second)
	for {
		promoted = c.CurrentPrimary(1)
		if promoted != victim {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partition 1 still routed to dead primary %d after 2s", victim)
		}
		time.Sleep(2 * time.Millisecond)
	}
	isOwner := false
	for _, o := range owners {
		if o == promoted {
			isOwner = true
		}
	}
	if !isOwner {
		t.Fatalf("promoted primary %d is not in partition 1's owner set %v", promoted, owners)
	}

	// Every acknowledged update stays readable from the promoted
	// backup while the placement primary is gone.
	if got := read(promoted, keys[1]); got != want[keys[1]] {
		t.Fatalf("promoted primary %d serves bal %d for %q, want %d", promoted, got, keys[1], want[keys[1]])
	}

	// Writes keep committing through the promoted primary (and stream
	// to the surviving owners).
	for i := 0; i < 5; i++ {
		submit(promoted, keys[1])
		want[keys[1]]++
	}

	// Heal; the deposed primary catches up from the retransmitted
	// stream and the cluster converges.
	fi.Heal()
	if errs := GateErrors(c, 10*time.Second); len(errs) != 0 {
		t.Fatalf("gate failed after heal: %v", errs)
	}
	// The victim's coordinator standby lost the active coordinator's
	// heartbeats while isolated and may have self-promoted under a
	// higher term; after healing that term deposes the old coordinator,
	// so the sweep retries through the takeover transients exactly as
	// the coordinator-failover gate does.
	advDeadline := time.Now().Add(15 * time.Second)
	for {
		rep := c.Advance()
		if !rep.Interrupted {
			break
		}
		if !errors.Is(rep.Err, core.ErrStaleTerm) &&
			!errors.Is(rep.Err, core.ErrNoCoordinator) &&
			!errors.Is(rep.Err, core.ErrCrashed) {
			t.Fatalf("post-heal advancement failed: %v", rep.Err)
		}
		if time.Now().After(advDeadline) {
			t.Fatal("post-heal advancement could not complete through coordinator churn")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if prep := verify.CheckPartitions(c); !prep.OK() {
		t.Fatalf("per-partition audit failed: %v", prep.Violations)
	}
	if errs := c.ConvergenceErrors(); len(errs) != 0 {
		t.Fatalf("convergence audit failed: %v", errs)
	}

	// Read-backs: every owner of partition 1 — including the healed
	// ex-primary — now serves the full acknowledged balance.
	for _, o := range owners {
		if got := read(o, keys[1]); got != want[keys[1]] {
			t.Fatalf("owner %d serves bal %d for %q, want %d after heal", o, got, keys[1], want[keys[1]])
		}
	}
	// And partition 0 was undisturbed throughout.
	if got := read(pm.Primary(0), keys[0]); got != want[keys[0]] {
		t.Fatalf("partition 0 lost updates: bal %d, want %d", got, want[keys[0]])
	}

	// Replication counters moved: sends on some primary, applies on
	// some backup.
	snap := c.ObsSnapshot()
	if snap.Counters["repl_sends"] == 0 || snap.Counters["repl_applies"] == 0 {
		t.Fatalf("replication counters flat: sends=%d applies=%d",
			snap.Counters["repl_sends"], snap.Counters["repl_applies"])
	}
}
