package harness

import (
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

// This file is the chaos side of the harness: it programs a fault
// schedule against a transport.FaultInjector while the ordinary Run
// loop drives a workload. The paper assumes a reliable network; a
// chaos run demonstrates that the reliable session layer
// (transport/reliable) discharges that assumption — every transaction
// still completes, counters still balance, and advancement still
// converges once the faults heal.

// ChaosConfig is the fault schedule for one run.
type ChaosConfig struct {
	// DropRate and DupRate are applied to every directed link for the
	// whole faulty window.
	DropRate float64
	DupRate  float64
	// PartitionAt, when PartitionFor > 0, injects a full (two-way)
	// partition between nodes PartitionA and PartitionB that long
	// after StartChaos, healing it PartitionFor later. Healing removes
	// every partition but leaves DropRate/DupRate in force until Stop.
	PartitionAt  time.Duration
	PartitionFor time.Duration
	PartitionA   model.NodeID
	PartitionB   model.NodeID
}

// Chaos is a running fault schedule. Stop heals everything.
type Chaos struct {
	fi  transport.FaultInjector
	cfg ChaosConfig

	mu          sync.Mutex
	timers      []*time.Timer
	partitions  int
	partitioned bool
	stopped     bool
}

// StartChaos applies cfg to fi: drop/duplication rates immediately,
// the partition (if any) on its schedule. Call Stop when the workload
// has drained to heal all faults before convergence checks.
func StartChaos(fi transport.FaultInjector, cfg ChaosConfig) *Chaos {
	c := &Chaos{fi: fi, cfg: cfg}
	fi.SetDropRate(cfg.DropRate)
	fi.SetDupRate(cfg.DupRate)
	if cfg.PartitionFor > 0 {
		c.timers = append(c.timers, time.AfterFunc(cfg.PartitionAt, c.cut))
		c.timers = append(c.timers, time.AfterFunc(cfg.PartitionAt+cfg.PartitionFor, c.heal))
	}
	return c
}

func (c *Chaos) cut() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	c.fi.Partition(c.cfg.PartitionA, c.cfg.PartitionB)
	c.fi.Partition(c.cfg.PartitionB, c.cfg.PartitionA)
	c.partitions++
	c.partitioned = true
}

func (c *Chaos) heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fi.Heal()
	c.partitioned = false
}

// Partitions reports how many partitions the schedule injected so far.
func (c *Chaos) Partitions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.partitions
}

// Stop cancels the schedule and heals every fault: partitions removed,
// drop and duplication rates zeroed. The retransmission layer then
// repairs any in-flight losses, after which the cluster must converge.
func (c *Chaos) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	timers := c.timers
	c.timers = nil
	c.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fi.SetDropRate(0)
	c.fi.SetDupRate(0)
	c.fi.Heal()
	c.partitioned = false
}
