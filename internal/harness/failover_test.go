package harness

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// TestCoordinatorKillAtEachPhase is the chaos gate for coordinator
// failover: for each of the four advancement phases, kill the active
// coordinator right as that phase completes, and require that a
// standby takes over under a higher term, finishes the sweep, the
// cluster converges, and every acknowledged update remains readable.
func TestCoordinatorKillAtEachPhase(t *testing.T) {
	for phase := 1; phase <= 4; phase++ {
		t.Run(fmt.Sprintf("phase%d", phase), func(t *testing.T) {
			c, err := core.NewCluster(core.Config{
				Nodes:          3,
				Reliable:       true,
				Failover:       true,
				ResendInterval: 5 * time.Millisecond,
				AckTimeout:     30 * time.Second,
				FailoverConfig: core.FailoverConfig{
					LeaseInterval: 10 * time.Millisecond,
					LeaseTimeout:  40 * time.Millisecond,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			keys := map[model.NodeID]string{0: "A", 1: "B", 2: "C"}
			for node, key := range keys {
				rec := model.NewRecord()
				rec.Fields["bal"] = 0
				c.Preload(node, key, rec)
			}
			c.Start()
			defer c.Close()

			// Acknowledged updates: every handle completes before the
			// sweep starts, so all of them must be readable after the
			// takeover publishes version 1.
			want := map[string]int64{}
			for i := 0; i < 30; i++ {
				node := model.NodeID(i % 3)
				key := keys[node]
				h, serr := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
					Node:    node,
					Updates: []model.KeyOp{{Key: key, Op: model.AddOp{Field: "bal", Delta: 1}}},
				}})
				if serr != nil {
					t.Fatal(serr)
				}
				if !h.WaitTimeout(30 * time.Second) {
					t.Fatal("update timed out before the chaos window even opened")
				}
				want[key]++
			}

			killCh := ArmPhaseKill(c, phase)
			rep := c.Advance()
			if !rep.Interrupted {
				t.Fatalf("sweep survived a phase-%d coordinator kill: %+v", phase, rep)
			}
			var kill FailoverKill
			select {
			case kill = <-killCh:
			case <-time.After(5 * time.Second):
				t.Fatal("chaos kill never fired")
			}
			if kill.Phase != phase {
				t.Fatalf("killed at phase %d, armed for %d", kill.Phase, phase)
			}

			tr, err := AwaitTakeover(c, kill.Term, 1, 15*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if tr.NewTerm <= kill.Term {
				t.Fatalf("takeover term %d not above killed term %d", tr.NewTerm, kill.Term)
			}
			if tr.Takeovers < 1 {
				t.Fatalf("no takeover counted: %+v", tr)
			}
			if errs := GateErrors(c, 10*time.Second); len(errs) != 0 {
				t.Fatalf("gate failed after phase-%d kill: %v", phase, errs)
			}

			// Nothing acknowledged lost: the published read version must
			// show every pre-kill update.
			for node, key := range keys {
				h, serr := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
					Node:  node,
					Reads: []string{key},
				}})
				if serr != nil {
					t.Fatal(serr)
				}
				if !h.WaitTimeout(30 * time.Second) {
					t.Fatal("read timed out after takeover")
				}
				reads := h.Reads()
				if len(reads) != 1 || reads[0].Record == nil {
					t.Fatalf("read of %q returned %+v", key, reads)
				}
				if got := reads[0].Record.Field("bal"); got != want[key] {
					t.Fatalf("acknowledged updates lost: %q has bal %d, want %d", key, got, want[key])
				}
			}

			// The successor must remain a fully functional coordinator.
			if rep2 := c.Advance(); rep2.Interrupted {
				t.Fatalf("successor's next sweep failed: %v", rep2.Err)
			}
		})
	}
}
