package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// This file is the failover side of the chaos harness: it kills the
// active advancement coordinator at a chosen protocol phase and audits
// that a standby finishes the interrupted sweep under a higher fencing
// term. The gate's pass condition is the tentpole invariant — the
// sweep completes, every node agrees on (vr, vu), convergence holds,
// and nothing a client was acknowledged for is lost.

// FailoverKill records one chaos kill of the active coordinator.
type FailoverKill struct {
	// Part is the partition whose sweep triggered the kill (0 for an
	// unpartitioned cluster or a part-blind ArmPhaseKill).
	Part int
	// Phase is the advancement phase (1–4) whose completion triggered
	// the kill.
	Phase int
	// Term is the fencing term the killed coordinator held.
	Term uint64
}

// ArmPhaseKill installs a phase hook on c that chaos-kills the active
// coordinator the first time an advancement sweep completes the given
// phase (1–4). The kill is delivered on the returned channel; the hook
// disarms itself after firing, so later sweeps (the successor's
// re-drive included) run unharmed. Requires Config.Failover.
func ArmPhaseKill(c *core.Cluster, phase int) <-chan FailoverKill {
	ch := make(chan FailoverKill, 1)
	var once sync.Once
	c.SetPhaseHook(func(p int) {
		if p != phase {
			return
		}
		once.Do(func() {
			if term, ok := c.KillActiveCoordinator(); ok {
				ch <- FailoverKill{Phase: p, Term: term}
			}
		})
	})
	return ch
}

// ArmPartPhaseKill is ArmPhaseKill for a partitioned cluster: the kill
// fires the first time PARTITION part's sweep completes the given
// phase, leaving every other partition's advancement as collateral-free
// as the protocol promises (their sweeps run on independent per-
// partition state and must keep completing under the successor).
func ArmPartPhaseKill(c *core.Cluster, part, phase int) <-chan FailoverKill {
	ch := make(chan FailoverKill, 1)
	var once sync.Once
	c.SetPartPhaseHook(func(p, ph int) {
		if p != part || ph != phase {
			return
		}
		once.Do(func() {
			if term, ok := c.KillActiveCoordinator(); ok {
				ch <- FailoverKill{Part: p, Phase: ph, Term: term}
			}
		})
	})
	return ch
}

// TakeoverReport is the audited outcome of one coordinator failover.
type TakeoverReport struct {
	// KilledTerm is the term the chaos kill removed; NewTerm the term
	// the successor completed the sweep under (always strictly higher).
	KilledTerm, NewTerm uint64
	// VR and VU are the cluster-wide versions after the resumed sweep.
	VR, VU model.Version
	// Takeovers is the process-wide takeover count after the gate.
	Takeovers int64
	// Elapsed is how long detection + takeover + sweep completion took.
	Elapsed time.Duration
}

// AwaitTakeover polls c until a standby holds the coordinator role
// under a term above killedTerm and every locally hosted node reports
// the fully advanced pair (wantVR, wantVR+1), then returns the audited
// report. It fails if the deadline passes first.
func AwaitTakeover(c *core.Cluster, killedTerm uint64, wantVR model.Version, timeout time.Duration) (TakeoverReport, error) {
	start := time.Now()
	deadline := start.Add(timeout)
	for {
		active, term := c.CoordinatorStatus()
		settled := active && term > killedTerm
		var vr, vu model.Version
		for i := 0; settled && i < c.NumNodes(); i++ {
			nd := c.Node(i)
			if nd == nil {
				continue
			}
			vr, vu = nd.Versions()
			if vr != wantVR || vu != wantVR+1 {
				settled = false
			}
		}
		if settled {
			return TakeoverReport{
				KilledTerm: killedTerm,
				NewTerm:    term,
				VR:         vr,
				VU:         vu,
				Takeovers:  c.ObsSnapshot().Counters["takeovers"],
				Elapsed:    time.Since(start),
			}, nil
		}
		if time.Now().After(deadline) {
			return TakeoverReport{}, fmt.Errorf(
				"harness: takeover incomplete after %v: active=%v term=%d (killed %d), want every node at (vr=%d, vu=%d)",
				timeout, active, term, killedTerm, wantVR, wantVR+1)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// GateErrors runs the chaos gate's post-takeover checks: cluster-wide
// convergence (counters balanced, versions agreed) and recorded
// invariant violations. Convergence is polled until the deadline —
// right after a takeover the successor may still be finishing the
// resumed sweep, and near-simultaneous elections can leave a fenced
// coordinator routed for a few ticks before it demotes. Violations are
// never transient. Empty means the gate passed.
func GateErrors(c *core.Cluster, settle time.Duration) []string {
	deadline := time.Now().Add(settle)
	var errs []string
	for {
		errs = c.ConvergenceErrors()
		if len(errs) == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	return append(errs, c.Violations()...)
}
