// Package ring provides a growable power-of-two FIFO ring buffer — the
// backing structure for the node work queue and the transport
// mailboxes, which previously used append + q.items = q.items[1:]
// slices. That idiom has two hot-path pathologies under sustained load:
// the backing array is reallocated (and the live suffix copied) every
// time the head outruns the remaining capacity, and the consumed prefix
// of each array stays reachable — dead messages are retained until the
// whole array is dropped, so steady-state memory grows with cumulative
// throughput rather than with backlog.
//
// The ring keeps one buffer and wraps head/tail indices around it with
// a mask; it reallocates only when the *live* element count outgrows
// the buffer (doubling, so the amortized cost per element is O(1)), and
// it zeroes each slot as it is consumed so the elements' referents
// become collectable immediately. Steady-state capacity is therefore
// bounded by the high-water backlog, never by throughput.
//
// Ring is not safe for concurrent use; callers (workQueue, mailbox)
// wrap it in their own mutex + condvar to keep the unbounded,
// blocking-receive semantics the protocol's no-waiting property needs.
package ring

// minCap is the initial buffer size on first Push. Small enough that an
// idle queue costs nothing to speak of, large enough that short bursts
// never grow.
const minCap = 16

// Ring is a FIFO queue over a power-of-two circular buffer. The zero
// value is an empty ring ready for use.
type Ring[T any] struct {
	buf  []T
	head uint64 // index of the next element to Pop
	tail uint64 // index of the next free slot
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return int(r.tail - r.head) }

// Cap returns the current buffer capacity (0 before the first Push).
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Push appends v at the tail, growing the buffer if it is full.
func (r *Ring[T]) Push(v T) {
	if r.Len() == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail&uint64(len(r.buf)-1)] = v
	r.tail++
}

// Pop removes and returns the head element. ok is false if the ring is
// empty. The vacated slot is zeroed so the element's referents are not
// retained by the buffer.
func (r *Ring[T]) Pop() (v T, ok bool) {
	if r.head == r.tail {
		return v, false
	}
	i := r.head & uint64(len(r.buf)-1)
	v = r.buf[i]
	var zero T
	r.buf[i] = zero
	r.head++
	return v, true
}

// Peek returns the head element without removing it. ok is false if the
// ring is empty.
func (r *Ring[T]) Peek() (v T, ok bool) {
	if r.head == r.tail {
		return v, false
	}
	return r.buf[r.head&uint64(len(r.buf)-1)], true
}

// grow doubles the buffer (or allocates the initial one) and linearizes
// the live elements into it starting at index 0.
func (r *Ring[T]) grow() {
	newCap := minCap
	if len(r.buf) > 0 {
		newCap = len(r.buf) * 2
	}
	nb := make([]T, newCap)
	n := r.Len()
	mask := uint64(len(r.buf) - 1)
	for i := 0; i < n; i++ {
		nb[i] = r.buf[(r.head+uint64(i))&mask]
	}
	r.buf = nb
	r.head = 0
	r.tail = uint64(n)
}
