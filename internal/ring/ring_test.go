package ring

import (
	"math/rand"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d ok=%v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty ring reported ok")
	}
}

func TestPeek(t *testing.T) {
	var r Ring[string]
	if _, ok := r.Peek(); ok {
		t.Fatal("Peek on empty ring reported ok")
	}
	r.Push("a")
	r.Push("b")
	if v, ok := r.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q ok=%v, want a", v, ok)
	}
	if r.Len() != 2 {
		t.Fatalf("Peek consumed an element: Len = %d", r.Len())
	}
}

func TestWrapAroundInterleaved(t *testing.T) {
	// Interleave pushes and pops so head/tail lap the buffer many times
	// without ever growing past minCap.
	var r Ring[int]
	next, expect := 0, 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 7; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 7; i++ {
			v, ok := r.Pop()
			if !ok || v != expect {
				t.Fatalf("round %d: Pop = %d ok=%v, want %d", round, v, ok, expect)
			}
			expect++
		}
	}
	if r.Cap() > minCap {
		t.Errorf("Cap = %d after depth-7 traffic, want %d", r.Cap(), minCap)
	}
}

// TestSteadyStateCapacityBounded is the regression test for the
// slice-shift retention bug: with a bounded backlog, capacity must be
// bounded by the backlog high-water mark (rounded up to a power of
// two), no matter how many elements flow through in total.
func TestSteadyStateCapacityBounded(t *testing.T) {
	var r Ring[[]byte]
	const depth = 100 // high-water backlog
	payload := make([]byte, 1)
	for i := 0; i < 200000; i++ {
		r.Push(payload)
		if r.Len() > depth {
			t.Fatal("backlog exceeded test bound")
		}
		if i%2 == 0 || r.Len() == depth {
			r.Pop()
		}
	}
	// 128 is the next power of two above depth; anything larger means
	// capacity scaled with throughput, not backlog.
	if r.Cap() > 128 {
		t.Errorf("Cap = %d after 200k elements at backlog ≤ %d, want ≤ 128", r.Cap(), depth)
	}
}

func TestPopZeroesSlot(t *testing.T) {
	var r Ring[*int]
	x := new(int)
	r.Push(x)
	if v, ok := r.Pop(); !ok || v != x {
		t.Fatal("Pop did not return pushed pointer")
	}
	// The vacated slot must no longer reference x.
	for _, p := range r.buf {
		if p == x {
			t.Fatal("consumed slot still references the popped element")
		}
	}
}

func TestGrowPreservesOrderAcrossWrap(t *testing.T) {
	// Force a grow while head is mid-buffer so linearization must copy
	// a wrapped live region.
	var r Ring[int]
	for i := 0; i < minCap; i++ {
		r.Push(i)
	}
	for i := 0; i < minCap/2; i++ {
		r.Pop()
	}
	for i := minCap; i < 4*minCap; i++ {
		r.Push(i) // grows at least once with head != 0
	}
	expect := minCap / 2
	for {
		v, ok := r.Pop()
		if !ok {
			break
		}
		if v != expect {
			t.Fatalf("Pop = %d, want %d", v, expect)
		}
		expect++
	}
	if expect != 4*minCap {
		t.Fatalf("drained %d elements, want %d", expect-minCap/2, 4*minCap-minCap/2)
	}
}

func TestRandomizedAgainstSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var r Ring[int]
	var ref []int
	for step := 0; step < 100000; step++ {
		if rng.Intn(2) == 0 {
			v := rng.Int()
			r.Push(v)
			ref = append(ref, v)
		} else if len(ref) > 0 {
			v, ok := r.Pop()
			if !ok || v != ref[0] {
				t.Fatalf("step %d: Pop = %d ok=%v, want %d", step, v, ok, ref[0])
			}
			ref = ref[1:]
		} else if _, ok := r.Pop(); ok {
			t.Fatalf("step %d: Pop on empty reported ok", step)
		}
		if r.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, r.Len(), len(ref))
		}
	}
}
