package wire

import (
	"testing"

	"repro/internal/transport"
)

// benchMessages picks the two hot-path shapes: a subtransaction with a
// realistic tree (the per-transaction cost) and a counter reply (the
// per-advancement-sweep cost).
func benchMessages(b *testing.B) (subtxn, counters transport.Message) {
	b.Helper()
	msgs := sampleMessages()
	for _, m := range msgs {
		if transport.PayloadName(m.Payload) == "subtxn" {
			subtxn = m
			break
		}
	}
	for _, m := range msgs {
		if transport.PayloadName(m.Payload) == "counter_reply" {
			counters = m
			break
		}
	}
	return subtxn, counters
}

// BenchmarkEncodeSubtxn measures steady-state encode with a reused
// buffer: 0 allocs/op is the contract (EXPERIMENTS.md "Wire overhead").
func BenchmarkEncodeSubtxn(b *testing.B) {
	m, _ := benchMessages(b)
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkEncodeCounterReply(b *testing.B) {
	_, m := benchMessages(b)
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkDecodeSubtxn measures decode cost. Decode inherently
// allocates the payload structs it returns (interface boxing plus the
// spec tree); the number to watch is allocs/op staying flat as the
// message is re-decoded, i.e. no hidden quadratic work.
func BenchmarkDecodeSubtxn(b *testing.B) {
	m, _ := benchMessages(b)
	frame, err := AppendFrame(nil, m)
	if err != nil {
		b.Fatal(err)
	}
	body := frame[4:]
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeCounterReply(b *testing.B) {
	_, m := benchMessages(b)
	frame, err := AppendFrame(nil, m)
	if err != nil {
		b.Fatal(err)
	}
	body := frame[4:]
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(body); err != nil {
			b.Fatal(err)
		}
	}
}
