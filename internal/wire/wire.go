// Package wire is the binary codec for the 3V protocol's network
// frames. Every payload type in internal/core/messages.go (plus the
// reliable session envelopes) has a fixed type id in an explicit
// registry; frames are length-prefixed and carry a format version byte
// so incompatible peers fail fast instead of misparsing.
//
// Frame layout (length prefix first, then the frame body):
//
//	uint32 BE  body length (version byte through end of payload)
//	byte       format version (1, or 2 when a trace context is present)
//	byte       flags (version 2 only; bit 0 = trace context follows,
//	           other bits must be zero)
//	uvarint    trace id   (version 2 with flag bit 0 only)
//	uvarint    parent span id (version 2 with flag bit 0 only)
//	varint     From node id
//	varint     To node id
//	uvarint    payload type id (see the registry below)
//	...        payload body, type-specific
//
// An untraced message encodes as a version-1 frame, byte-identical to
// the pre-tracing format, so peers without sampling enabled exchange
// exactly the old wire bytes and old captures still decode.
//
// Integers use the varint encodings from encoding/binary: unsigned
// quantities (versions, txn ids, sequence numbers, counts) are
// uvarints; signed quantities (node ids, deltas, counter values) are
// zig-zag varints. Strings are a uvarint length followed by raw bytes.
// Booleans are one byte (0/1, anything else is a decode error).
//
// Encoding is a type switch — no reflection on the hot path — and
// appends into a caller-supplied buffer, so steady-state encoding does
// not allocate. Decoding allocates the payload structs it returns
// (interface boxing is unavoidable with transport.Message carrying
// `any`); slice allocations are bounds-checked against the remaining
// input so corrupt or adversarial frames cannot provoke huge
// allocations.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/reliable"
)

// FormatVersion is the base frame format generation; FormatVersionTC
// is the extension that prefixes the header with a flags byte and an
// optional trace context; FormatVersionBatch marks a batched frame —
// one envelope whose payload is a transport.BatchMsg carrying N member
// messages, each with its own flags/trace-context/endpoint header.
// Readers accept all three; writers emit the base version whenever the
// message carries no trace context (so tracing costs zero wire bytes
// when disabled) and the batch version exactly when the payload is a
// BatchMsg. Any other version byte is rejected (ErrVersion) — peers
// must run the same format.
const (
	FormatVersion      = 1
	FormatVersionTC    = 2
	FormatVersionBatch = 3
)

// Header flag bits (FormatVersionTC frames only).
const flagTraceContext = 1 << 0

// MaxFrame bounds the body length a reader will accept: 16 MiB is far
// above any real protocol message (counter replies grow linearly with
// cluster size; a 1M-node row would still fit) while keeping a corrupt
// length prefix from provoking a giant allocation.
const MaxFrame = 16 << 20

// Payload type ids. These are wire contract: never renumber, only
// append. The names must match the transport payload-name registry
// (internal/core and transport/reliable register them in init; the
// agreement is asserted by TestNamesMatchTransportRegistry).
const (
	idSubtxn           = 1
	idStartAdvancement = 2
	idAckAdvancement   = 3
	idReadVersion      = 4
	idAckReadVersion   = 5
	idGC               = 6
	idAckGC            = 7
	idCounterReq       = 8
	idCounterReply     = 9
	idNCVote           = 10
	idNCDecision       = 11
	idVersionProbe     = 12
	idVersionReply     = 13
	idUnlock           = 14
	idReliableData     = 15
	idReliableAck      = 16
	idReliableNoop     = 17
	idSpanReport       = 18
	idCoordState       = 19
	idStaleTerm        = 20
	idBatch            = 21
	idCounters         = 22
	idCountersReq      = 23
	idReplicate        = 24
	idReplicateAck     = 25
)

// Op kind bytes inside SubtxnSpec updates.
const (
	opAdd    = 1
	opAppend = 2
	opRemove = 3
	opSet    = 4
	opScale  = 5
)

// maxSpecDepth bounds SubtxnSpec child recursion on decode. Real trees
// are a handful of levels; 64 is generous and keeps a malicious frame
// from exhausting the stack.
const maxSpecDepth = 64

var (
	// ErrVersion reports a frame from an incompatible format generation.
	ErrVersion = errors.New("wire: unsupported format version")
	// ErrTruncated reports a frame body shorter than its payload needs.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrTrailing reports unconsumed bytes after a complete payload.
	ErrTrailing = errors.New("wire: trailing bytes after payload")
	// ErrUnknownType reports a payload type id outside the registry.
	ErrUnknownType = errors.New("wire: unknown payload type")
)

// TypeName returns the stable registry name for a payload type id
// ("subtxn", "counter_reply", ...), or "" for unknown ids. The names
// agree with transport.PayloadName for the corresponding Go types.
func TypeName(id uint64) string {
	switch id {
	case idSubtxn:
		return "subtxn"
	case idStartAdvancement:
		return "start_advancement"
	case idAckAdvancement:
		return "ack_advancement"
	case idReadVersion:
		return "read_version"
	case idAckReadVersion:
		return "ack_read_version"
	case idGC:
		return "gc"
	case idAckGC:
		return "ack_gc"
	case idCounterReq:
		return "counter_req"
	case idCounterReply:
		return "counter_reply"
	case idNCVote:
		return "nc_vote"
	case idNCDecision:
		return "nc_decision"
	case idVersionProbe:
		return "version_probe"
	case idVersionReply:
		return "version_reply"
	case idUnlock:
		return "unlock"
	case idReliableData:
		return "reliable_data"
	case idReliableAck:
		return "reliable_ack"
	case idReliableNoop:
		return "reliable_noop"
	case idSpanReport:
		return "span_report"
	case idCoordState:
		return "coord_state"
	case idStaleTerm:
		return "stale_term"
	case idBatch:
		return "batch"
	case idCounters:
		return "counters"
	case idCountersReq:
		return "counters_req"
	case idReplicate:
		return "replicate"
	case idReplicateAck:
		return "replicate_ack"
	}
	return ""
}

// Prototypes returns one zero value of every registered payload type,
// keyed by type id. Tests use it to assert the registry covers every
// protocol message and agrees with the transport name registry.
func Prototypes() map[uint64]any {
	return map[uint64]any{
		idSubtxn:           core.SubtxnMsg{},
		idStartAdvancement: core.StartAdvancementMsg{},
		idAckAdvancement:   core.AckAdvancementMsg{},
		idReadVersion:      core.ReadVersionMsg{},
		idAckReadVersion:   core.AckReadVersionMsg{},
		idGC:               core.GCMsg{},
		idAckGC:            core.AckGCMsg{},
		idCounterReq:       core.CounterReqMsg{},
		idCounterReply:     core.CounterReplyMsg{},
		idNCVote:           core.NCVoteMsg{},
		idNCDecision:       core.NCDecisionMsg{},
		idVersionProbe:     core.VersionProbeMsg{},
		idVersionReply:     core.VersionReplyMsg{},
		idUnlock:           core.UnlockMsg{},
		idReliableData:     reliable.DataMsg{},
		idReliableAck:      reliable.AckMsg{},
		idReliableNoop:     reliable.NoopMsg{},
		idSpanReport:       core.SpanReportMsg{},
		idCoordState:       core.CoordStateMsg{},
		idStaleTerm:        core.StaleTermMsg{},
		idBatch:            transport.BatchMsg{},
		idCounters:         core.CountersMsg{},
		idCountersReq:      core.CountersReqMsg{},
		idReplicate:        core.ReplicateMsg{},
		idReplicateAck:     core.ReplicateAckMsg{},
	}
}

// AppendFrame appends the complete frame for m — length prefix,
// header, payload — to buf and returns the extended slice. It errors
// on payload types outside the registry and on malformed payloads (nil
// subtransaction specs, unknown op kinds).
func AppendFrame(buf []byte, m transport.Message) ([]byte, error) {
	if b, ok := m.Payload.(transport.BatchMsg); ok {
		return appendBatchFrame(buf, m, b)
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length backfilled below
	if m.TC.Sampled() {
		buf = append(buf, FormatVersionTC, flagTraceContext)
		buf = binary.AppendUvarint(buf, m.TC.TraceID)
		buf = binary.AppendUvarint(buf, m.TC.SpanID)
	} else {
		buf = append(buf, FormatVersion)
	}
	buf = binary.AppendVarint(buf, int64(m.From))
	buf = binary.AppendVarint(buf, int64(m.To))
	buf, err := appendPayload(buf, m.Payload, 0)
	if err != nil {
		return buf[:start], err
	}
	body := len(buf) - start - 4
	if body > MaxFrame {
		return buf[:start], fmt.Errorf("wire: frame body %d exceeds MaxFrame", body)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(body))
	return buf, nil
}

// appendBatchFrame writes one FormatVersionBatch frame: the envelope's
// endpoints, then the member count, then each member's own header
// (flags byte, optional trace context, endpoints) and payload. The
// envelope's trace context is not encoded — a batch is a transport
// artifact, not a traced protocol event; members keep their own
// contexts. Members must not themselves be BatchMsg (no nesting).
func appendBatchFrame(buf []byte, m transport.Message, b transport.BatchMsg) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length backfilled below
	buf = append(buf, FormatVersionBatch)
	buf = binary.AppendVarint(buf, int64(m.From))
	buf = binary.AppendVarint(buf, int64(m.To))
	buf = binary.AppendUvarint(buf, idBatch)
	buf = binary.AppendUvarint(buf, uint64(len(b.Msgs)))
	for _, mm := range b.Msgs {
		if mm.TC.Sampled() {
			buf = append(buf, flagTraceContext)
			buf = binary.AppendUvarint(buf, mm.TC.TraceID)
			buf = binary.AppendUvarint(buf, mm.TC.SpanID)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendVarint(buf, int64(mm.From))
		buf = binary.AppendVarint(buf, int64(mm.To))
		var err error
		buf, err = appendPayload(buf, mm.Payload, 0)
		if err != nil {
			return buf[:start], err
		}
	}
	body := len(buf) - start - 4
	if body > MaxFrame {
		return buf[:start], fmt.Errorf("wire: frame body %d exceeds MaxFrame", body)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(body))
	return buf, nil
}

// appendPayload writes the type id and body for one payload. depth
// guards reliable.DataMsg nesting (a session envelope must not wrap
// another envelope).
func appendPayload(buf []byte, payload any, depth int) ([]byte, error) {
	switch p := payload.(type) {
	case core.SubtxnMsg:
		buf = binary.AppendUvarint(buf, idSubtxn)
		buf = binary.AppendUvarint(buf, uint64(p.Txn))
		buf = binary.AppendUvarint(buf, uint64(p.Version))
		buf = appendBool(buf, p.Root)
		buf = appendBool(buf, p.Assigned)
		if p.Spec == nil {
			buf = appendBool(buf, false)
		} else {
			buf = appendBool(buf, true)
			var err error
			buf, err = appendSpec(buf, p.Spec, 0)
			if err != nil {
				return buf, err
			}
		}
		buf = appendBool(buf, p.ReadOnly)
		buf = appendBool(buf, p.NC)
		buf = binary.AppendVarint(buf, int64(p.RootNode))
		buf = appendBool(buf, p.Compensating)
		var nanos int64
		if !p.SentAt.IsZero() {
			nanos = p.SentAt.UnixNano()
		}
		buf = binary.AppendVarint(buf, nanos)
		buf = binary.AppendVarint(buf, int64(p.Part))
		return buf, nil
	case core.StartAdvancementMsg:
		buf = binary.AppendUvarint(buf, idStartAdvancement)
		buf = binary.AppendUvarint(buf, uint64(p.NewVU))
		buf = binary.AppendUvarint(buf, p.Term)
		return binary.AppendVarint(buf, int64(p.Part)), nil
	case core.AckAdvancementMsg:
		buf = binary.AppendUvarint(buf, idAckAdvancement)
		buf = binary.AppendUvarint(buf, uint64(p.NewVU))
		buf = binary.AppendVarint(buf, int64(p.Node))
		return binary.AppendVarint(buf, int64(p.Part)), nil
	case core.ReadVersionMsg:
		buf = binary.AppendUvarint(buf, idReadVersion)
		buf = binary.AppendUvarint(buf, uint64(p.NewVR))
		buf = binary.AppendUvarint(buf, p.Term)
		return binary.AppendVarint(buf, int64(p.Part)), nil
	case core.AckReadVersionMsg:
		buf = binary.AppendUvarint(buf, idAckReadVersion)
		buf = binary.AppendUvarint(buf, uint64(p.NewVR))
		buf = binary.AppendVarint(buf, int64(p.Node))
		return binary.AppendVarint(buf, int64(p.Part)), nil
	case core.GCMsg:
		buf = binary.AppendUvarint(buf, idGC)
		buf = binary.AppendUvarint(buf, uint64(p.Keep))
		buf = binary.AppendUvarint(buf, p.Term)
		return binary.AppendVarint(buf, int64(p.Part)), nil
	case core.AckGCMsg:
		buf = binary.AppendUvarint(buf, idAckGC)
		buf = binary.AppendUvarint(buf, uint64(p.Keep))
		buf = binary.AppendVarint(buf, int64(p.Node))
		return binary.AppendVarint(buf, int64(p.Part)), nil
	case core.CounterReqMsg:
		buf = binary.AppendUvarint(buf, idCounterReq)
		buf = binary.AppendUvarint(buf, uint64(p.Version))
		buf = binary.AppendVarint(buf, int64(p.Round))
		buf = binary.AppendUvarint(buf, p.Term)
		return binary.AppendVarint(buf, int64(p.Part)), nil
	case core.CounterReplyMsg:
		buf = binary.AppendUvarint(buf, idCounterReply)
		buf = binary.AppendUvarint(buf, uint64(p.Version))
		buf = binary.AppendVarint(buf, int64(p.Round))
		buf = binary.AppendVarint(buf, int64(p.Node))
		buf = binary.AppendUvarint(buf, uint64(len(p.R)))
		for _, v := range p.R {
			buf = binary.AppendVarint(buf, v)
		}
		buf = binary.AppendUvarint(buf, uint64(len(p.C)))
		for _, v := range p.C {
			buf = binary.AppendVarint(buf, v)
		}
		buf = binary.AppendVarint(buf, int64(p.Part))
		return buf, nil
	case core.NCVoteMsg:
		buf = binary.AppendUvarint(buf, idNCVote)
		buf = binary.AppendUvarint(buf, uint64(p.Txn))
		buf = binary.AppendVarint(buf, int64(p.Node))
		buf = appendBool(buf, p.OK)
		buf = binary.AppendVarint(buf, int64(p.Children))
		return appendBool(buf, p.Root), nil
	case core.NCDecisionMsg:
		buf = binary.AppendUvarint(buf, idNCDecision)
		buf = binary.AppendUvarint(buf, uint64(p.Txn))
		return appendBool(buf, p.Commit), nil
	case core.VersionProbeMsg:
		buf = binary.AppendUvarint(buf, idVersionProbe)
		buf = binary.AppendVarint(buf, int64(p.Round))
		buf = binary.AppendUvarint(buf, p.Term)
		return binary.AppendVarint(buf, int64(p.Part)), nil
	case core.VersionReplyMsg:
		buf = binary.AppendUvarint(buf, idVersionReply)
		buf = binary.AppendVarint(buf, int64(p.Round))
		buf = binary.AppendVarint(buf, int64(p.Node))
		buf = binary.AppendUvarint(buf, uint64(p.VR))
		buf = binary.AppendUvarint(buf, uint64(p.VU))
		buf = appendBool(buf, p.BelowVR)
		return binary.AppendVarint(buf, int64(p.Part)), nil
	case core.UnlockMsg:
		buf = binary.AppendUvarint(buf, idUnlock)
		return binary.AppendUvarint(buf, uint64(p.Txn)), nil
	case reliable.DataMsg:
		if depth > 0 {
			return buf, fmt.Errorf("wire: nested reliable.DataMsg")
		}
		buf = binary.AppendUvarint(buf, idReliableData)
		buf = binary.AppendUvarint(buf, p.Seq)
		return appendPayload(buf, p.Payload, depth+1)
	case reliable.AckMsg:
		buf = binary.AppendUvarint(buf, idReliableAck)
		return binary.AppendUvarint(buf, p.CumAck), nil
	case reliable.NoopMsg:
		return binary.AppendUvarint(buf, idReliableNoop), nil
	case core.SpanReportMsg:
		buf = binary.AppendUvarint(buf, idSpanReport)
		buf = binary.AppendUvarint(buf, uint64(len(p.Spans)))
		for _, s := range p.Spans {
			buf = binary.AppendUvarint(buf, s.TraceID)
			buf = binary.AppendUvarint(buf, s.SpanID)
			buf = binary.AppendUvarint(buf, s.ParentID)
			buf = appendString(buf, s.Name)
			buf = binary.AppendVarint(buf, int64(s.Node))
			buf = binary.AppendVarint(buf, s.Start)
			buf = binary.AppendVarint(buf, s.Dur)
			buf = appendString(buf, s.Attr)
			buf = binary.AppendUvarint(buf, uint64(len(s.Stages)))
			for _, st := range s.Stages {
				buf = appendString(buf, st.Name)
				buf = binary.AppendVarint(buf, st.Dur)
			}
		}
		return buf, nil
	case core.CoordStateMsg:
		buf = binary.AppendUvarint(buf, idCoordState)
		buf = binary.AppendUvarint(buf, p.Term)
		buf = binary.AppendVarint(buf, int64(p.Coord))
		buf = binary.AppendUvarint(buf, uint64(p.VR))
		buf = binary.AppendUvarint(buf, uint64(p.VU))
		return binary.AppendVarint(buf, int64(p.Phase)), nil
	case core.StaleTermMsg:
		buf = binary.AppendUvarint(buf, idStaleTerm)
		buf = binary.AppendUvarint(buf, p.Term)
		return binary.AppendVarint(buf, int64(p.Node)), nil
	case transport.BatchMsg:
		// A BatchMsg is only valid as the whole frame (FormatVersionBatch,
		// handled by AppendFrame); reaching this switch means it is nested
		// inside another payload, which the format forbids.
		return buf, fmt.Errorf("wire: nested BatchMsg")
	case core.CountersReqMsg:
		buf = binary.AppendUvarint(buf, idCountersReq)
		buf = binary.AppendUvarint(buf, uint64(len(p.Versions)))
		for _, v := range p.Versions {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
		buf = binary.AppendVarint(buf, int64(p.Round))
		buf = binary.AppendUvarint(buf, p.Term)
		return binary.AppendVarint(buf, int64(p.Part)), nil
	case core.CountersMsg:
		buf = binary.AppendUvarint(buf, idCounters)
		buf = binary.AppendVarint(buf, int64(p.Round))
		buf = binary.AppendVarint(buf, int64(p.Node))
		buf = binary.AppendUvarint(buf, uint64(len(p.Entries)))
		for _, e := range p.Entries {
			buf = binary.AppendUvarint(buf, uint64(e.Version))
			buf = binary.AppendUvarint(buf, uint64(len(e.R)))
			for _, v := range e.R {
				buf = binary.AppendVarint(buf, v)
			}
			buf = binary.AppendUvarint(buf, uint64(len(e.C)))
			for _, v := range e.C {
				buf = binary.AppendVarint(buf, v)
			}
		}
		buf = binary.AppendVarint(buf, int64(p.Part))
		return buf, nil
	case core.ReplicateMsg:
		buf = binary.AppendUvarint(buf, idReplicate)
		buf = binary.AppendVarint(buf, int64(p.Part))
		buf = binary.AppendUvarint(buf, p.Term)
		buf = binary.AppendUvarint(buf, p.Seq)
		buf = binary.AppendUvarint(buf, uint64(p.Version))
		buf = binary.AppendUvarint(buf, uint64(len(p.Ops)))
		for _, op := range p.Ops {
			buf = appendString(buf, op.Key)
			var err error
			buf, err = appendOp(buf, op.Op)
			if err != nil {
				return buf, err
			}
		}
		return buf, nil
	case core.ReplicateAckMsg:
		buf = binary.AppendUvarint(buf, idReplicateAck)
		buf = binary.AppendVarint(buf, int64(p.Part))
		buf = binary.AppendUvarint(buf, p.Seq)
		return binary.AppendVarint(buf, int64(p.Node)), nil
	}
	return buf, fmt.Errorf("%w: %T", ErrUnknownType, payload)
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendSpec(buf []byte, s *model.SubtxnSpec, depth int) ([]byte, error) {
	if s == nil {
		return buf, fmt.Errorf("wire: nil subtransaction spec")
	}
	if depth > maxSpecDepth {
		return buf, fmt.Errorf("wire: subtransaction tree deeper than %d", maxSpecDepth)
	}
	buf = binary.AppendVarint(buf, int64(s.Node))
	buf = binary.AppendUvarint(buf, uint64(len(s.Reads)))
	for _, r := range s.Reads {
		buf = appendString(buf, r)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Updates)))
	for _, u := range s.Updates {
		buf = appendString(buf, u.Key)
		var err error
		buf, err = appendOp(buf, u.Op)
		if err != nil {
			return buf, err
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Children)))
	for _, c := range s.Children {
		var err error
		buf, err = appendSpec(buf, c, depth+1)
		if err != nil {
			return buf, err
		}
	}
	return appendBool(buf, s.Abort), nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendOp(buf []byte, op model.Op) ([]byte, error) {
	switch o := op.(type) {
	case model.AddOp:
		buf = append(buf, opAdd)
		buf = appendString(buf, o.Field)
		return binary.AppendVarint(buf, o.Delta), nil
	case model.AppendOp:
		buf = append(buf, opAppend)
		return appendTuple(buf, o.T), nil
	case model.RemoveOp:
		buf = append(buf, opRemove)
		return appendTuple(buf, o.T), nil
	case model.SetOp:
		buf = append(buf, opSet)
		buf = appendString(buf, o.Field)
		return binary.AppendVarint(buf, o.Value), nil
	case model.ScaleOp:
		buf = append(buf, opScale)
		buf = appendString(buf, o.Field)
		buf = binary.AppendVarint(buf, o.Num)
		return binary.AppendVarint(buf, o.Den), nil
	}
	return buf, fmt.Errorf("wire: unencodable op %T", op)
}

func appendTuple(buf []byte, t model.Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(t.Txn))
	buf = binary.AppendVarint(buf, int64(t.Part))
	buf = binary.AppendVarint(buf, int64(t.Total)) // negative for tombstones
	buf = appendString(buf, t.Attr)
	buf = binary.AppendVarint(buf, t.Amount)
	return binary.AppendUvarint(buf, uint64(t.TxnVersion))
}

// DecodeFrame parses one frame body (the bytes after the length
// prefix) into a transport.Message. The whole body must be consumed —
// trailing bytes are an error, so a frame is either exactly one
// well-formed message or rejected.
func DecodeFrame(body []byte) (transport.Message, error) {
	d := &decoder{b: body}
	var tc obs.TraceContext
	switch v := d.byte(); v {
	case FormatVersion:
	case FormatVersionTC:
		flags := d.byte()
		if d.err == nil && flags&^flagTraceContext != 0 {
			return transport.Message{}, fmt.Errorf("%w: unknown header flags %#x", ErrVersion, flags)
		}
		if flags&flagTraceContext != 0 {
			tc.TraceID = d.uvarint()
			tc.SpanID = d.uvarint()
		}
	case FormatVersionBatch:
		return decodeBatchFrame(d)
	default:
		if d.err != nil {
			return transport.Message{}, d.err
		}
		return transport.Message{}, fmt.Errorf("%w: %d", ErrVersion, v)
	}
	from := d.varint()
	to := d.varint()
	payload := d.payload(0)
	if d.err != nil {
		return transport.Message{}, d.err
	}
	if d.off != len(d.b) {
		return transport.Message{}, fmt.Errorf("%w: %d byte(s)", ErrTrailing, len(d.b)-d.off)
	}
	return transport.Message{From: model.NodeID(from), To: model.NodeID(to), Payload: payload, TC: tc}, nil
}

// decodeBatchFrame parses the remainder of a FormatVersionBatch body
// (the version byte is already consumed): envelope endpoints, idBatch,
// member count, then each member's flags/trace-context/endpoints/
// payload. The envelope carries no trace context of its own.
func decodeBatchFrame(d *decoder) (transport.Message, error) {
	from := d.varint()
	to := d.varint()
	if id := d.uvarint(); d.err == nil && id != idBatch {
		return transport.Message{}, fmt.Errorf("wire: batch frame with payload id %d", id)
	}
	n := d.count()
	var msgs []transport.Message
	if n > 0 {
		msgs = make([]transport.Message, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		var mtc obs.TraceContext
		flags := d.byte()
		if d.err == nil && flags&^flagTraceContext != 0 {
			return transport.Message{}, fmt.Errorf("%w: unknown member flags %#x", ErrVersion, flags)
		}
		if flags&flagTraceContext != 0 {
			mtc.TraceID = d.uvarint()
			mtc.SpanID = d.uvarint()
		}
		mfrom := d.varint()
		mto := d.varint()
		payload := d.payload(0)
		msgs = append(msgs, transport.Message{
			From: model.NodeID(mfrom), To: model.NodeID(mto), Payload: payload, TC: mtc,
		})
	}
	if d.err != nil {
		return transport.Message{}, d.err
	}
	if d.off != len(d.b) {
		return transport.Message{}, fmt.Errorf("%w: %d byte(s)", ErrTrailing, len(d.b)-d.off)
	}
	return transport.Message{From: model.NodeID(from), To: model.NodeID(to), Payload: transport.BatchMsg{Msgs: msgs}}, nil
}

// decoder is a cursor over one frame body. The first error sticks; all
// reads after it return zero values, so decode methods can run
// straight-line and check d.err once.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail(ErrTruncated)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) bool() bool {
	switch d.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("wire: invalid bool byte at offset %d", d.off-1))
		return false
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(ErrTruncated)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count reads a collection length and sanity-checks it against the
// bytes remaining (every element costs ≥ 1 byte), so corrupt frames
// cannot provoke huge slice allocations.
func (d *decoder) count() int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(fmt.Errorf("wire: collection length %d exceeds remaining %d bytes", n, len(d.b)-d.off))
		return 0
	}
	return int(n)
}

func (d *decoder) payload(depth int) any {
	id := d.uvarint()
	if d.err != nil {
		return nil
	}
	switch id {
	case idSubtxn:
		m := core.SubtxnMsg{
			Txn:      model.TxnID(d.uvarint()),
			Version:  model.Version(d.uvarint()),
			Root:     d.bool(),
			Assigned: d.bool(),
		}
		if d.bool() {
			m.Spec = d.spec(0)
		}
		m.ReadOnly = d.bool()
		m.NC = d.bool()
		m.RootNode = model.NodeID(d.varint())
		m.Compensating = d.bool()
		if nanos := d.varint(); nanos != 0 {
			m.SentAt = time.Unix(0, nanos)
		}
		m.Part = int(d.varint())
		return m
	case idStartAdvancement:
		return core.StartAdvancementMsg{NewVU: model.Version(d.uvarint()), Term: d.uvarint(), Part: int(d.varint())}
	case idAckAdvancement:
		return core.AckAdvancementMsg{NewVU: model.Version(d.uvarint()), Node: model.NodeID(d.varint()), Part: int(d.varint())}
	case idReadVersion:
		return core.ReadVersionMsg{NewVR: model.Version(d.uvarint()), Term: d.uvarint(), Part: int(d.varint())}
	case idAckReadVersion:
		return core.AckReadVersionMsg{NewVR: model.Version(d.uvarint()), Node: model.NodeID(d.varint()), Part: int(d.varint())}
	case idGC:
		return core.GCMsg{Keep: model.Version(d.uvarint()), Term: d.uvarint(), Part: int(d.varint())}
	case idAckGC:
		return core.AckGCMsg{Keep: model.Version(d.uvarint()), Node: model.NodeID(d.varint()), Part: int(d.varint())}
	case idCounterReq:
		return core.CounterReqMsg{Version: model.Version(d.uvarint()), Round: int(d.varint()), Term: d.uvarint(), Part: int(d.varint())}
	case idCounterReply:
		m := core.CounterReplyMsg{
			Version: model.Version(d.uvarint()),
			Round:   int(d.varint()),
			Node:    model.NodeID(d.varint()),
		}
		if n := d.count(); n > 0 {
			m.R = make([]int64, n)
			for i := range m.R {
				m.R[i] = d.varint()
			}
		}
		if n := d.count(); n > 0 {
			m.C = make([]int64, n)
			for i := range m.C {
				m.C[i] = d.varint()
			}
		}
		m.Part = int(d.varint())
		return m
	case idNCVote:
		return core.NCVoteMsg{
			Txn:      model.TxnID(d.uvarint()),
			Node:     model.NodeID(d.varint()),
			OK:       d.bool(),
			Children: int(d.varint()),
			Root:     d.bool(),
		}
	case idNCDecision:
		return core.NCDecisionMsg{Txn: model.TxnID(d.uvarint()), Commit: d.bool()}
	case idVersionProbe:
		return core.VersionProbeMsg{Round: int(d.varint()), Term: d.uvarint(), Part: int(d.varint())}
	case idVersionReply:
		return core.VersionReplyMsg{
			Round:   int(d.varint()),
			Node:    model.NodeID(d.varint()),
			VR:      model.Version(d.uvarint()),
			VU:      model.Version(d.uvarint()),
			BelowVR: d.bool(),
			Part:    int(d.varint()),
		}
	case idUnlock:
		return core.UnlockMsg{Txn: model.TxnID(d.uvarint())}
	case idReliableData:
		if depth > 0 {
			d.fail(fmt.Errorf("wire: nested reliable.DataMsg"))
			return nil
		}
		seq := d.uvarint()
		inner := d.payload(depth + 1)
		return reliable.DataMsg{Seq: seq, Payload: inner}
	case idReliableAck:
		return reliable.AckMsg{CumAck: d.uvarint()}
	case idReliableNoop:
		return reliable.NoopMsg{}
	case idSpanReport:
		m := core.SpanReportMsg{}
		if n := d.count(); n > 0 {
			m.Spans = make([]obs.Span, n)
			for i := range m.Spans {
				s := &m.Spans[i]
				s.TraceID = d.uvarint()
				s.SpanID = d.uvarint()
				s.ParentID = d.uvarint()
				s.Name = d.string()
				s.Node = int(d.varint())
				s.Start = d.varint()
				s.Dur = d.varint()
				s.Attr = d.string()
				if k := d.count(); k > 0 {
					s.Stages = make([]obs.SpanStage, k)
					for j := range s.Stages {
						s.Stages[j].Name = d.string()
						s.Stages[j].Dur = d.varint()
					}
				}
			}
		}
		return m
	case idCoordState:
		return core.CoordStateMsg{
			Term:  d.uvarint(),
			Coord: model.NodeID(d.varint()),
			VR:    model.Version(d.uvarint()),
			VU:    model.Version(d.uvarint()),
			Phase: int(d.varint()),
		}
	case idStaleTerm:
		return core.StaleTermMsg{Term: d.uvarint(), Node: model.NodeID(d.varint())}
	case idBatch:
		// Batches are only valid as the top of a FormatVersionBatch frame
		// (decoded by decodeBatchFrame); inside any payload position they
		// would be nesting, which the format forbids.
		d.fail(fmt.Errorf("wire: nested batch payload"))
		return nil
	case idCountersReq:
		m := core.CountersReqMsg{}
		if n := d.count(); n > 0 {
			m.Versions = make([]model.Version, n)
			for i := range m.Versions {
				m.Versions[i] = model.Version(d.uvarint())
			}
		}
		m.Round = int(d.varint())
		m.Term = d.uvarint()
		m.Part = int(d.varint())
		return m
	case idCounters:
		m := core.CountersMsg{
			Round: int(d.varint()),
			Node:  model.NodeID(d.varint()),
		}
		if n := d.count(); n > 0 {
			m.Entries = make([]core.VersionCounters, n)
			for i := range m.Entries {
				e := &m.Entries[i]
				e.Version = model.Version(d.uvarint())
				if k := d.count(); k > 0 {
					e.R = make([]int64, k)
					for j := range e.R {
						e.R[j] = d.varint()
					}
				}
				if k := d.count(); k > 0 {
					e.C = make([]int64, k)
					for j := range e.C {
						e.C[j] = d.varint()
					}
				}
			}
		}
		m.Part = int(d.varint())
		return m
	case idReplicate:
		m := core.ReplicateMsg{
			Part:    int(d.varint()),
			Term:    d.uvarint(),
			Seq:     d.uvarint(),
			Version: model.Version(d.uvarint()),
		}
		if n := d.count(); n > 0 {
			m.Ops = make([]core.AppliedOp, n)
			for i := range m.Ops {
				m.Ops[i].Key = d.string()
				m.Ops[i].Op = d.op()
			}
		}
		return m
	case idReplicateAck:
		return core.ReplicateAckMsg{Part: int(d.varint()), Seq: d.uvarint(), Node: model.NodeID(d.varint())}
	}
	d.fail(fmt.Errorf("%w: id %d", ErrUnknownType, id))
	return nil
}

func (d *decoder) spec(depth int) *model.SubtxnSpec {
	if depth > maxSpecDepth {
		d.fail(fmt.Errorf("wire: subtransaction tree deeper than %d", maxSpecDepth))
		return nil
	}
	s := &model.SubtxnSpec{Node: model.NodeID(d.varint())}
	if n := d.count(); n > 0 {
		s.Reads = make([]string, n)
		for i := range s.Reads {
			s.Reads[i] = d.string()
		}
	}
	if n := d.count(); n > 0 {
		s.Updates = make([]model.KeyOp, n)
		for i := range s.Updates {
			s.Updates[i].Key = d.string()
			s.Updates[i].Op = d.op()
		}
	}
	if n := d.count(); n > 0 {
		s.Children = make([]*model.SubtxnSpec, n)
		for i := range s.Children {
			s.Children[i] = d.spec(depth + 1)
			if d.err != nil {
				return nil
			}
		}
	}
	s.Abort = d.bool()
	if d.err != nil {
		return nil
	}
	return s
}

func (d *decoder) op() model.Op {
	switch d.byte() {
	case opAdd:
		return model.AddOp{Field: d.string(), Delta: d.varint()}
	case opAppend:
		return model.AppendOp{T: d.tuple()}
	case opRemove:
		return model.RemoveOp{T: d.tuple()}
	case opSet:
		return model.SetOp{Field: d.string(), Value: d.varint()}
	case opScale:
		return model.ScaleOp{Field: d.string(), Num: d.varint(), Den: d.varint()}
	default:
		if d.err == nil {
			d.fail(fmt.Errorf("wire: unknown op kind at offset %d", d.off-1))
		}
		return nil
	}
}

func (d *decoder) tuple() model.Tuple {
	return model.Tuple{
		Txn:        model.TxnID(d.uvarint()),
		Part:       int(d.varint()),
		Total:      int(d.varint()),
		Attr:       d.string(),
		Amount:     d.varint(),
		TxnVersion: model.Version(d.uvarint()),
	}
}

// The helpers below expose pieces of the frame codec to the durability
// layer (internal/durable), whose log records and checkpoint blobs
// reuse the wire encodings for ops, records and whole messages rather
// than invent parallel ones.

// AppendOp appends the wire encoding of one store op — the same
// encoding SubtxnSpec updates use inside frames.
func AppendOp(buf []byte, op model.Op) ([]byte, error) { return appendOp(buf, op) }

// DecodeOp decodes one op from the front of b, returning the op and
// the number of bytes consumed.
func DecodeOp(b []byte) (model.Op, int, error) {
	d := &decoder{b: b}
	op := d.op()
	if d.err != nil {
		return nil, 0, d.err
	}
	return op, d.off, nil
}

// AppendRecord appends the encoding of one versioned record: summary
// fields (sorted by name, so encoding is deterministic) then the tuple
// log in order.
func AppendRecord(buf []byte, r *model.Record) []byte {
	names := make([]string, 0, len(r.Fields))
	for k := range r.Fields {
		names = append(names, k)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, k := range names {
		buf = appendString(buf, k)
		buf = binary.AppendVarint(buf, r.Fields[k])
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Log)))
	for _, t := range r.Log {
		buf = appendTuple(buf, t)
	}
	return buf
}

// DecodeRecord decodes one record from the front of b, returning the
// record and the number of bytes consumed.
func DecodeRecord(b []byte) (*model.Record, int, error) {
	d := &decoder{b: b}
	rec := model.NewRecord()
	for i, n := 0, d.count(); i < n; i++ {
		k := d.string()
		rec.Fields[k] = d.varint()
	}
	for i, n := 0, d.count(); i < n; i++ {
		rec.Log = append(rec.Log, d.tuple())
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	return rec, d.off, nil
}
