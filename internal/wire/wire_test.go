package wire

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/reliable"
)

// sampleMessages returns one representative message per registered
// payload type, exercising every field including nested subtransaction
// trees, every op kind, tombstone tuples, and the reliable envelopes.
// The fuzz corpus seeds from the same set.
func sampleMessages() []transport.Message {
	deepSpec := &model.SubtxnSpec{
		Node:  1,
		Reads: []string{"acct:1", "acct:2"},
		Updates: []model.KeyOp{
			{Key: "acct:1", Op: model.AddOp{Field: "bal", Delta: -50}},
			{Key: "acct:1", Op: model.AppendOp{T: model.Tuple{Txn: model.MakeTxnID(1, 7), Part: 1, Total: 2, Attr: "bal", Amount: -50, TxnVersion: 3}}},
			{Key: "acct:2", Op: model.RemoveOp{T: model.Tuple{Txn: model.MakeTxnID(2, 9), Part: 2, Total: -2, Attr: "sold", Amount: 5, TxnVersion: 1}}},
		},
		Children: []*model.SubtxnSpec{
			{
				Node:    2,
				Updates: []model.KeyOp{{Key: "acct:3", Op: model.AddOp{Field: "bal", Delta: 50}}},
				Children: []*model.SubtxnSpec{
					{Node: 0, Reads: []string{"acct:4"}, Abort: true},
				},
			},
			{Node: 0, Updates: []model.KeyOp{{Key: "acct:5", Op: model.SetOp{Field: "bal", Value: 100}}}},
		},
	}
	ncSpec := &model.SubtxnSpec{
		Node: 0,
		Updates: []model.KeyOp{
			{Key: "acct:1", Op: model.SetOp{Field: "bal", Value: 10}},
			{Key: "acct:1", Op: model.ScaleOp{Field: "bal", Num: 11, Den: 10}},
		},
	}
	return []transport.Message{
		{From: 0, To: 1, Payload: core.SubtxnMsg{
			Txn: model.MakeTxnID(0, 42), Version: 3, Root: true, Assigned: true,
			Spec: deepSpec, RootNode: 0, SentAt: time.Unix(0, 1700000000123456789),
		}},
		{From: 1, To: 2, Payload: core.SubtxnMsg{
			Txn: model.MakeTxnID(1, 1), Version: 2, Spec: ncSpec,
			NC: true, RootNode: 1, Compensating: true,
		}},
		{From: 2, To: 0, Payload: core.SubtxnMsg{
			Txn: model.MakeTxnID(2, 3), Root: true, ReadOnly: true,
			Spec: &model.SubtxnSpec{Node: 0, Reads: []string{"acct:9"}},
		}},
		{From: 0, To: 1, Payload: core.SubtxnMsg{Txn: 1}}, // nil spec, zero SentAt
		{From: 3, To: 0, Payload: core.StartAdvancementMsg{NewVU: 4, Term: 7}},
		{From: 3, To: 0, Payload: core.StartAdvancementMsg{NewVU: 4}}, // unfenced (term 0)
		{From: 0, To: 3, Payload: core.AckAdvancementMsg{NewVU: 4, Node: 0}},
		{From: 3, To: 1, Payload: core.ReadVersionMsg{NewVR: 3, Term: 7}},
		{From: 1, To: 3, Payload: core.AckReadVersionMsg{NewVR: 3, Node: 1}},
		{From: 3, To: 2, Payload: core.GCMsg{Keep: 3, Term: 7}},
		{From: 2, To: 3, Payload: core.AckGCMsg{Keep: 3, Node: 2}},
		{From: 3, To: 0, Payload: core.CounterReqMsg{Version: 2, Round: 17, Term: 7}},
		{From: 0, To: 3, Payload: core.CounterReplyMsg{
			Version: 2, Round: 17, Node: 0,
			R: []int64{5, 0, 12, 3}, C: []int64{4, 1, 0, -2},
		}},
		{From: 1, To: 0, Payload: core.NCVoteMsg{Txn: model.MakeTxnID(0, 5), Node: 1, OK: true, Children: 2, Root: false}},
		{From: 0, To: 1, Payload: core.NCDecisionMsg{Txn: model.MakeTxnID(0, 5), Commit: true}},
		{From: 3, To: 2, Payload: core.VersionProbeMsg{Round: 2, Term: 7}},
		{From: 2, To: 3, Payload: core.VersionReplyMsg{Round: 2, Node: 2, VR: 1, VU: 2, BelowVR: true}},
		{From: 3, To: 1, Payload: core.UnlockMsg{Txn: model.MakeTxnID(1, 8)}},
		{From: 4, To: 1, Payload: core.CoordStateMsg{Term: 9, Coord: 4, VR: 3, VU: 4, Phase: 2}},
		{From: 1, To: 4, Payload: core.StaleTermMsg{Term: 10, Node: 1}},
		{From: 0, To: 2, Payload: reliable.DataMsg{Seq: 99, Payload: core.GCMsg{Keep: 5}}},
		{From: 2, To: 0, Payload: reliable.AckMsg{CumAck: 98}},
		{From: 0, To: 2, Payload: reliable.DataMsg{Seq: 100, Payload: reliable.NoopMsg{}}},
		{From: 0, To: 2, Payload: reliable.NoopMsg{}},
		// Traced frames: the version-2 header carries the trace context.
		{From: 1, To: 2, TC: obs.TraceContext{TraceID: uint64(model.MakeTxnID(1, 12)), SpanID: 1<<62 | 2<<48 | 7}, Payload: core.SubtxnMsg{
			Txn: model.MakeTxnID(1, 12), Version: 2, Spec: ncSpec, RootNode: 1,
		}},
		{From: 0, To: 2, TC: obs.TraceContext{TraceID: 42, SpanID: 42}, Payload: reliable.DataMsg{Seq: 101, Payload: core.UnlockMsg{Txn: 42}}},
		{From: 2, To: 1, Payload: core.SpanReportMsg{Spans: []obs.Span{
			{
				TraceID: uint64(model.MakeTxnID(1, 12)), SpanID: 1<<62 | 3<<48 | 9, ParentID: 1<<62 | 2<<48 | 7,
				Name: "subtxn", Node: 2, Start: 1700000000123456789, Dur: 250_000,
				Attr:   "t1.12",
				Stages: []obs.SpanStage{{Name: "wire", Dur: 90_000}, {Name: "fsync", Dur: 60_000}},
			},
			{TraceID: 7, SpanID: 7, Name: "txn", Node: 0, Start: 5, Dur: 10},
		}}},
		{From: 2, To: 1, Payload: core.SpanReportMsg{}}, // empty report
		{From: 3, To: 0, Payload: core.CountersReqMsg{Versions: []model.Version{2, 3}, Round: 17, Term: 7}},
		{From: 3, To: 0, Payload: core.CountersReqMsg{Round: 1}}, // no versions, unfenced
		{From: 0, To: 3, Payload: core.CountersMsg{
			Round: 17, Node: 0,
			Entries: []core.VersionCounters{
				{Version: 2, R: []int64{5, 0, 12, 3}, C: []int64{4, 1, 0, -2}},
				{Version: 3},
			},
		}},
		{From: 0, To: 3, Payload: core.CountersMsg{Round: 18, Node: 0}}, // no entries
		{From: 0, To: 1, Payload: core.ReplicateMsg{
			Part: 1, Term: 5, Seq: 42, Version: 3,
			Ops: []core.AppliedOp{
				{Key: "acct:1", Op: model.AddOp{Field: "bal", Delta: 7}},
				{Key: "acct:2", Op: model.AppendOp{T: model.Tuple{Txn: model.MakeTxnID(0, 3), Part: 1, Total: 1, Attr: "bal", Amount: 7, TxnVersion: 3}}},
			},
		}},
		{From: 0, To: 1, Payload: core.ReplicateMsg{Part: 0, Term: 2, Seq: 9}}, // empty ops = lease heartbeat
		{From: 1, To: 0, Payload: core.ReplicateAckMsg{Part: 1, Seq: 42, Node: 1}},
		// Batched frames: one version-3 envelope, members keep their own
		// endpoints and trace contexts.
		{From: 0, To: 2, Payload: transport.BatchMsg{Msgs: []transport.Message{
			{From: 0, To: 2, Payload: reliable.DataMsg{Seq: 7, Payload: core.GCMsg{Keep: 5, Term: 7}}},
			{From: 0, To: 2, TC: obs.TraceContext{TraceID: 42, SpanID: 43}, Payload: reliable.DataMsg{Seq: 8, Payload: core.UnlockMsg{Txn: 42}}},
			{From: 2, To: 0, Payload: reliable.AckMsg{CumAck: 12}},
		}}},
		{From: 1, To: 0, Payload: transport.BatchMsg{}}, // empty batch
	}
}

func TestRoundTripEveryType(t *testing.T) {
	for _, m := range sampleMessages() {
		frame, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("encode %T: %v", m.Payload, err)
		}
		if len(frame) < 5 {
			t.Fatalf("encode %T: frame too short (%d bytes)", m.Payload, len(frame))
		}
		got, err := DecodeFrame(frame[4:])
		if err != nil {
			t.Fatalf("decode %T: %v", m.Payload, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("round trip %T:\n sent %+v\n got  %+v", m.Payload, m, got)
		}
	}
}

// TestRoundTripCoversRegistry fails if a payload type is registered but
// absent from the sample set — new message types must extend the
// round-trip coverage (and thereby the fuzz corpus).
func TestRoundTripCoversRegistry(t *testing.T) {
	covered := make(map[reflect.Type]bool)
	for _, m := range sampleMessages() {
		covered[reflect.TypeOf(m.Payload)] = true
	}
	for id, proto := range Prototypes() {
		if !covered[reflect.TypeOf(proto)] {
			t.Errorf("registered type %T (id %d) has no round-trip sample", proto, id)
		}
	}
}

// TestNamesMatchTransportRegistry pins the wire registry names to the
// transport payload-name registry (satellite: stable metric labels
// across processes). The two are registered in different packages;
// this is the contract check.
func TestNamesMatchTransportRegistry(t *testing.T) {
	for id, proto := range Prototypes() {
		wireName := TypeName(id)
		if wireName == "" {
			t.Errorf("type id %d has no wire name", id)
			continue
		}
		if tn := transport.PayloadName(proto); tn != wireName {
			t.Errorf("type %T: wire name %q but transport name %q", proto, wireName, tn)
		}
	}
	if TypeName(0) != "" || TypeName(9999) != "" {
		t.Error("TypeName must return \"\" for unknown ids")
	}
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	good, err := AppendFrame(nil, sampleMessages()[0])
	if err != nil {
		t.Fatal(err)
	}
	body := good[4:]

	cases := map[string][]byte{
		"empty":           {},
		"bad version":     append([]byte{FormatVersionBatch + 1}, body[1:]...),
		"truncated":       body[:len(body)/2],
		"trailing":        append(append([]byte{}, body...), 0),
		"unknown type id": {FormatVersion, 0, 2, 0xFF, 0x7F},
		// A v2 frame advertising a flag bit we don't know must be
		// rejected, not half-parsed.
		"unknown v2 flag": {FormatVersionTC, 0x02, 0, 2, idReliableNoop},
		"v2 truncated tc": {FormatVersionTC, 0x01, 0x80},
	}
	for name, data := range cases {
		if _, err := DecodeFrame(data); err == nil {
			t.Errorf("%s: decode accepted a corrupt frame", name)
		}
	}
}

// TestHeaderVersionGating pins the compatibility contract: an untraced
// message emits a version-1 frame byte-identical to the pre-tracing
// format, and only a sampled trace context switches the header to
// version 2.
func TestHeaderVersionGating(t *testing.T) {
	plain := transport.Message{From: 0, To: 1, Payload: core.GCMsg{Keep: 3}}
	frame, err := AppendFrame(nil, plain)
	if err != nil {
		t.Fatal(err)
	}
	if frame[4] != FormatVersion {
		t.Fatalf("untraced frame has version %d, want %d", frame[4], FormatVersion)
	}

	traced := plain
	traced.TC = obs.TraceContext{TraceID: 9, SpanID: 9}
	tframe, err := AppendFrame(nil, traced)
	if err != nil {
		t.Fatal(err)
	}
	if tframe[4] != FormatVersionTC {
		t.Fatalf("traced frame has version %d, want %d", tframe[4], FormatVersionTC)
	}
	got, err := DecodeFrame(tframe[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got.TC != traced.TC {
		t.Fatalf("trace context lost: %+v", got.TC)
	}
	// The version-1 body must itself still decode (old peers' frames),
	// with a zero trace context.
	old, err := DecodeFrame(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if old.TC.Sampled() {
		t.Fatalf("v1 frame decoded with trace context %+v", old.TC)
	}
}

// TestBatchFrameFormat pins the batch framing contract: a BatchMsg
// payload always emits a version-3 frame, nesting is rejected in both
// directions (a batch inside a batch on encode, a batch payload id
// anywhere but the top of a v3 frame on decode), and members may be
// session envelopes but the members' payloads may not be batches.
func TestBatchFrameFormat(t *testing.T) {
	batch := transport.Message{From: 0, To: 1, Payload: transport.BatchMsg{Msgs: []transport.Message{
		{From: 0, To: 1, Payload: core.GCMsg{Keep: 2}},
	}}}
	frame, err := AppendFrame(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	if frame[4] != FormatVersionBatch {
		t.Fatalf("batch frame has version %d, want %d", frame[4], FormatVersionBatch)
	}

	// Nested batch on encode must be rejected.
	nested := transport.Message{From: 0, To: 1, Payload: transport.BatchMsg{Msgs: []transport.Message{
		{From: 0, To: 1, Payload: transport.BatchMsg{}},
	}}}
	if _, err := AppendFrame(nil, nested); err == nil {
		t.Fatal("encode accepted a batch nested inside a batch")
	}

	// idBatch inside an ordinary (v1) frame must be rejected on decode.
	v1batch := []byte{FormatVersion, 0, 2, idBatch, 0}
	if _, err := DecodeFrame(v1batch); err == nil {
		t.Fatal("decode accepted a batch payload inside a v1 frame")
	}

	// A v3 frame whose payload id is not idBatch must be rejected.
	bad := append([]byte{}, frame[4:]...)
	// [ver][From=0 varint][To=1 varint][id] — id is the 4th byte here.
	bad[3] = idGC
	if _, err := DecodeFrame(bad); err == nil {
		t.Fatal("decode accepted a v3 frame without a batch payload")
	}

	// A member carrying an unknown flag bit must be rejected.
	withFlag := append([]byte{}, frame[4:]...)
	withFlag[5] = 0x02 // member flags byte (after ver, from, to, id, count)
	if _, err := DecodeFrame(withFlag); err == nil {
		t.Fatal("decode accepted a batch member with unknown flags")
	}

	// Members may target different endpoints than the envelope and keep
	// their own trace contexts (tcpnet routes each member by its own To).
	mixed := transport.Message{From: 0, To: 5, Payload: transport.BatchMsg{Msgs: []transport.Message{
		{From: 0, To: 1, TC: obs.TraceContext{TraceID: 3, SpanID: 4}, Payload: core.UnlockMsg{Txn: 9}},
		{From: 0, To: 2, Payload: core.GCMsg{Keep: 1}},
	}}}
	mf, err := AppendFrame(nil, mixed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(mf[4:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mixed, got) {
		t.Fatalf("mixed-endpoint batch round trip:\n sent %+v\n got  %+v", mixed, got)
	}
}

func TestDecodeBoundsCollectionLengths(t *testing.T) {
	// A counter reply claiming 2^40 R entries in a 16-byte body must be
	// rejected before allocation, not after.
	body := []byte{FormatVersion, 0, 6, idCounterReply, 2, 34, 0}
	body = append(body, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) // uvarint 2^56
	if _, err := DecodeFrame(body); err == nil {
		t.Fatal("decode accepted an oversized collection length")
	}
}

func TestEncodeRejectsUnregisteredPayload(t *testing.T) {
	type mystery struct{}
	if _, err := AppendFrame(nil, transport.Message{Payload: mystery{}}); err == nil {
		t.Fatal("encode accepted an unregistered payload type")
	}
	if _, err := AppendFrame(nil, transport.Message{Payload: reliable.DataMsg{Seq: 1, Payload: reliable.DataMsg{Seq: 2, Payload: core.GCMsg{}}}}); err == nil {
		t.Fatal("encode accepted a nested session envelope")
	}
}

func TestAppendFrameReusesBuffer(t *testing.T) {
	msgs := sampleMessages()
	buf := make([]byte, 0, 4096)
	first, err := AppendFrame(buf, msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &buf[:1][0] {
		t.Fatal("AppendFrame reallocated despite sufficient capacity")
	}
	// A failed encode must roll the buffer back to its input length so
	// the caller's framing stays consistent.
	type mystery struct{}
	out, err := AppendFrame(first, transport.Message{Payload: mystery{}})
	if err == nil {
		t.Fatal("expected encode error")
	}
	if len(out) != len(first) {
		t.Fatalf("failed encode left %d bytes, want %d", len(out), len(first))
	}
}
