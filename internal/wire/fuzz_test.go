package wire

import (
	"reflect"
	"testing"
)

// FuzzWireRoundTrip feeds arbitrary bytes to the frame decoder and, for
// every input it accepts, checks the codec's fixed point: re-encoding
// the decoded message and decoding again must yield an identical
// message (non-canonical varint spellings collapse to canonical on the
// first re-encode, so decoded-vs-redecoded is the right comparison, not
// input-vs-re-encoded bytes). The corpus is seeded with one frame per
// registered payload type — including NC3V 2PC votes/decisions, the
// coordinator-recovery probe/reply, and version-3 batch envelopes
// (whose nesting the decoder must reject: a batch is only valid as a
// whole frame, never as a member or nested payload) — so mutation
// starts from every branch of the decoder.
func FuzzWireRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		frame, err := AppendFrame(nil, m)
		if err != nil {
			f.Fatalf("seed encode %T: %v", m.Payload, err)
		}
		f.Add(frame[4:])
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		m1, err := DecodeFrame(body)
		if err != nil {
			return // rejected input: fine, as long as we didn't panic
		}
		frame, err := AppendFrame(nil, m1)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v\nmessage: %+v", err, m1)
		}
		m2, err := DecodeFrame(frame[4:])
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v\nmessage: %+v", err, m1)
		}
		if !reflect.DeepEqual(m1, m2) {
			t.Fatalf("round trip not a fixed point:\n first  %+v\n second %+v", m1, m2)
		}
	})
}
