package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
)

// TestConcurrentShardedStore hammers the sharded engine from many
// goroutines doing EnsureVersion / ReadMax / ApplyFrom / GC on both
// colliding keys (every goroutine shares "hot") and non-colliding keys
// (one private key per goroutine). Run under -race this checks the
// shard locking; the final-state assertions check that per-item
// atomicity survived the sharding.
func TestConcurrentShardedStore(t *testing.T) {
	s := New()
	const (
		goroutines = 8
		iters      = 2000
	)
	s.Preload("hot", rec(map[string]int64{"bal": 0}))
	for g := 0; g < goroutines; g++ {
		s.Preload(fmt.Sprintf("cold-%d", g), rec(map[string]int64{"bal": 0}))
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			private := fmt.Sprintf("cold-%d", g)
			for i := 0; i < iters; i++ {
				// Colliding traffic on one shard.
				s.EnsureVersion("hot", 1)
				s.ApplyFrom("hot", 1, model.AddOp{Field: "bal", Delta: 1})
				s.ReadMax("hot", 1)
				// Non-colliding traffic spread over shards.
				s.EnsureVersion(private, 1)
				s.ApplyFrom(private, 1, model.AddOp{Field: "bal", Delta: 1})
				if _, _, ok := s.ReadMax(private, 1); !ok {
					t.Errorf("goroutine %d: private key vanished", g)
					return
				}
				if i%500 == 0 {
					s.Stats()
					s.MaxLiveVersions()
				}
			}
		}(g)
	}
	wg.Wait()

	// Exactly one goroutine's EnsureVersion("hot", 1) may create; all
	// apply deltas must land on version 1 (dual write also hits v0? No:
	// ApplyFrom(hot, 1, ...) touches versions ≥ 1 only).
	got, ver, ok := s.ReadMax("hot", 1)
	if !ok || ver != 1 {
		t.Fatalf("hot item: ReadMax = v%d ok=%v, want v1", ver, ok)
	}
	if want := int64(goroutines * iters); got.Field("bal") != want {
		t.Errorf("hot bal = %d, want %d (lost updates under contention)", got.Field("bal"), want)
	}
	st := s.Stats()
	if st.Copies != goroutines+1 { // one copy per item's v1 materialization
		t.Errorf("Copies = %d, want %d", st.Copies, goroutines+1)
	}
	for g := 0; g < goroutines; g++ {
		got, _, _ := s.ReadMax(fmt.Sprintf("cold-%d", g), 1)
		if got.Field("bal") != iters {
			t.Errorf("cold-%d bal = %d, want %d", g, got.Field("bal"), iters)
		}
	}
}

// TestConcurrentGCWithTraffic interleaves store-wide GC sweeps with
// read/write traffic at versions the GC never touches — the live
// protocol pattern (GC only runs for quiesced versions below the new
// read version, while current-version traffic continues).
func TestConcurrentGCWithTraffic(t *testing.T) {
	s := New()
	const keys = 64
	for i := 0; i < keys; i++ {
		s.Preload(fmt.Sprintf("k-%02d", i), rec(map[string]int64{"bal": 1}))
	}
	// Materialize versions 1 and 2 everywhere; traffic runs at 2 while
	// GC(1) collapses versions < 1.
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k-%02d", i)
		s.EnsureVersion(k, 1)
		s.EnsureVersion(k, 2)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("k-%02d", (g*17+i)%keys)
				if _, ver, ok := s.ReadMax(k, 2); !ok || ver != 2 {
					t.Errorf("ReadMax(%s, 2) = v%d ok=%v mid-GC", k, ver, ok)
					return
				}
				s.ApplyFrom(k, 2, model.AddOp{Field: "bal", Delta: 1})
				i++
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		s.GC(1)
		s.PendingItems(1)
		s.HasVersionsBelow(1)
	}
	close(stop)
	wg.Wait()
	if mv := s.MaxLiveVersions(); mv != 2 {
		t.Errorf("MaxLiveVersions after GC(1) = %d, want 2 (v1, v2)", mv)
	}
}

// referenceStore is the pre-shard semantics in miniature: one map, one
// guard (none needed — the test drives it single-threaded). It
// re-implements the accounting rules so the sharded store's aggregated
// Stats and Export can be checked against the old single-map behaviour.
type referenceStore struct {
	items map[string]map[model.Version]int64 // key -> version -> bal
	stats Stats
}

func newReference() *referenceStore {
	return &referenceStore{items: make(map[string]map[model.Version]int64)}
}

func (r *referenceStore) ensure(key string, v model.Version) {
	vs := r.items[key]
	if vs == nil {
		vs = make(map[model.Version]int64)
		r.items[key] = vs
	}
	if _, ok := vs[v]; ok {
		return
	}
	var floor model.Version
	found := false
	for ver := range vs {
		if ver <= v && (!found || ver > floor) {
			floor, found = ver, true
		}
	}
	if found {
		vs[v] = vs[floor]
		r.stats.Copies++
	} else {
		vs[v] = 0
		r.stats.Creations++
	}
	if n := len(vs); n > r.stats.MaxLiveVersions {
		r.stats.MaxLiveVersions = n
	}
}

func (r *referenceStore) apply(key string, v model.Version, delta int64) {
	for ver := range r.items[key] {
		if ver >= v {
			r.items[key][ver] += delta
		}
	}
}

// TestShardedMatchesSingleMapReference drives an identical deterministic
// operation sequence through the sharded store and the single-map
// reference, then compares the full exported state and the aggregated
// accounting — the regression net for "sharding changed no semantics".
func TestShardedMatchesSingleMapReference(t *testing.T) {
	s := New()
	ref := newReference()
	nextKey := func(i int) string { return fmt.Sprintf("key-%03d", i%97) }
	for i := 0; i < 5000; i++ {
		k := nextKey(i)
		v := model.Version(i % 3)
		s.EnsureVersion(k, v)
		ref.ensure(k, v)
		delta := int64(i%7 - 3)
		s.ApplyFrom(k, v, model.AddOp{Field: "bal", Delta: delta})
		ref.apply(k, v, delta)
	}

	// Exported state must match the reference exactly, in sorted order.
	exp := s.Export()
	if len(exp) != len(ref.items) {
		t.Fatalf("exported %d items, reference has %d", len(exp), len(ref.items))
	}
	for i, item := range exp {
		if i > 0 && exp[i-1].Key >= item.Key {
			t.Fatalf("Export not sorted: %q then %q", exp[i-1].Key, item.Key)
		}
		want := ref.items[item.Key]
		if len(item.Versions) != len(want) {
			t.Fatalf("%s: %d versions exported, want %d", item.Key, len(item.Versions), len(want))
		}
		for _, ev := range item.Versions {
			if got, ok := want[ev.Ver]; !ok || ev.Rec.Field("bal") != got {
				t.Errorf("%s v%d bal = %d, want %d", item.Key, ev.Ver, ev.Rec.Field("bal"), got)
			}
		}
	}

	st := s.Stats()
	if st.Copies != ref.stats.Copies || st.Creations != ref.stats.Creations {
		t.Errorf("Stats copies/creations = %d/%d, want %d/%d",
			st.Copies, st.Creations, ref.stats.Copies, ref.stats.Creations)
	}
	if st.MaxLiveVersions != ref.stats.MaxLiveVersions {
		t.Errorf("MaxLiveVersions = %d, want %d", st.MaxLiveVersions, ref.stats.MaxLiveVersions)
	}

	// Round-trip: Import of the export must reproduce the same export.
	s2 := New()
	s2.Import(exp)
	exp2 := s2.Export()
	if fmt.Sprint(exp) != fmt.Sprint(exp2) {
		t.Error("Import(Export()) round trip changed the state")
	}
}
