package storage

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

// benchKeys builds a store preloaded with nkeys items at version 0 and
// a materialized version 1, so ReadMax and EnsureVersion both run their
// steady-state paths (find an existing version) rather than mutating
// chain shape per call.
func benchKeys(nkeys int) (*Store, []string) {
	s := New()
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("item-%04d", i)
		r := model.NewRecord()
		r.Fields["bal"] = int64(i)
		s.Preload(keys[i], r)
		s.EnsureVersion(keys[i], 1)
	}
	return s, keys
}

// BenchmarkStoreReadMaxParallel hammers versioned point reads from all
// procs at once — the query subtransaction hot path (Section 4.2). The
// pre-shard implementation serializes every call on one store-global
// RWMutex; the acceptance gate for the sharded engine is ≥2× at
// GOMAXPROCS ≥ 4.
func BenchmarkStoreReadMaxParallel(b *testing.B) {
	s, keys := benchKeys(1024)
	mask := len(keys) - 1
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, ok := s.ReadMax(keys[i&mask], 1); !ok {
				b.Fatal("read missed")
			}
			i++
		}
	})
}

// BenchmarkStoreEnsureVersionParallel hammers the atomic
// check-and-create of Section 4.1 step 4 in its common case (version
// already exists), which takes the write lock in the pre-shard engine.
func BenchmarkStoreEnsureVersionParallel(b *testing.B) {
	s, keys := benchKeys(1024)
	mask := len(keys) - 1
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if created := s.EnsureVersion(keys[i&mask], 1); created {
				b.Fatal("version unexpectedly created")
			}
			i++
		}
	})
}

// BenchmarkStoreApplyFromParallel measures the update subtransaction's
// write step on disjoint keys (one version live per key ≥ 1).
func BenchmarkStoreApplyFromParallel(b *testing.B) {
	s, keys := benchKeys(1024)
	mask := len(keys) - 1
	op := model.AddOp{Field: "bal", Delta: 1}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if n := s.ApplyFrom(keys[i&mask], 1, op); n != 1 {
				b.Fatalf("ApplyFrom touched %d versions", n)
			}
			i++
		}
	})
}

// BenchmarkStoreMixedParallel approximates the protocol mix: mostly
// reads, some write-path traffic, and a periodic store-wide GC sweep —
// the workload where one global lock hurts most.
func BenchmarkStoreMixedParallel(b *testing.B) {
	s, keys := benchKeys(1024)
	mask := len(keys) - 1
	op := model.AddOp{Field: "bal", Delta: 1}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i&mask]
			switch i & 7 {
			case 0:
				s.EnsureVersion(k, 1)
				s.ApplyFrom(k, 1, op)
			case 1:
				s.Exists(k, 1)
			default:
				s.ReadMax(k, 1)
			}
			i++
		}
	})
}

// BenchmarkStoreStats measures the cross-shard aggregation cost of
// Stats (called by the obs scrape path, never the txn hot path).
func BenchmarkStoreStats(b *testing.B) {
	s, _ := benchKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := s.Stats(); st.Copies == 0 && st.Creations == 0 {
			b.Fatal("no accounting recorded")
		}
	}
}

// BenchmarkStoreExistsParallel is the allocation-free read path
// (primitive 1 of the paper): no record clone, so ns/op isolates lock
// acquisition + map lookup — the purest view of store lock contention,
// uncontaminated by the GC cost of ReadMax's deep copy.
func BenchmarkStoreExistsParallel(b *testing.B) {
	s, keys := benchKeys(1024)
	mask := len(keys) - 1
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if !s.Exists(keys[i&mask], 1) {
				b.Fatal("miss")
			}
			i++
		}
	})
}
