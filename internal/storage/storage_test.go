package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func rec(fields map[string]int64) *model.Record {
	r := model.NewRecord()
	for k, v := range fields {
		r.Fields[k] = v
	}
	return r
}

func TestPreloadAndReadMax(t *testing.T) {
	s := New()
	s.Preload("A", rec(map[string]int64{"bal": 10}))
	got, ver, ok := s.ReadMax("A", 5)
	if !ok || ver != 0 || got.Field("bal") != 10 {
		t.Fatalf("ReadMax(A,5) = %v v%d ok=%v, want bal=10 v0 true", got, ver, ok)
	}
	if _, _, ok := s.ReadMax("missing", 5); ok {
		t.Error("ReadMax of missing item reported ok")
	}
}

func TestReadMaxIsACopy(t *testing.T) {
	s := New()
	s.Preload("A", rec(map[string]int64{"bal": 1}))
	got, _, _ := s.ReadMax("A", 0)
	got.Fields["bal"] = 999
	again, _, _ := s.ReadMax("A", 0)
	if again.Field("bal") != 1 {
		t.Error("mutating ReadMax result leaked into the store")
	}
}

func TestExists(t *testing.T) {
	s := New()
	s.Preload("A", rec(nil))
	if !s.Exists("A", 0) {
		t.Error("Exists(A,0) = false after preload")
	}
	if s.Exists("A", 1) {
		t.Error("Exists(A,1) = true before any write")
	}
	if s.Exists("B", 0) {
		t.Error("Exists(B,0) = true for unknown item")
	}
}

func TestEnsureVersionCopiesFloor(t *testing.T) {
	s := New()
	s.Preload("A", rec(map[string]int64{"bal": 7}))
	if created := s.EnsureVersion("A", 1); !created {
		t.Fatal("EnsureVersion(A,1) did not create")
	}
	if created := s.EnsureVersion("A", 1); created {
		t.Fatal("second EnsureVersion(A,1) created again")
	}
	got, ver, _ := s.ReadMax("A", 1)
	if ver != 1 || got.Field("bal") != 7 {
		t.Errorf("version 1 = %v v%d, want copy of v0 (bal=7)", got, ver)
	}
	st := s.Stats()
	if st.Copies != 1 {
		t.Errorf("Copies = %d, want 1", st.Copies)
	}
	if st.BytesCopied <= 0 {
		t.Errorf("BytesCopied = %d, want > 0", st.BytesCopied)
	}
}

func TestEnsureVersionFreshItem(t *testing.T) {
	s := New()
	if created := s.EnsureVersion("new", 2); !created {
		t.Fatal("EnsureVersion of fresh item did not create")
	}
	got, ver, ok := s.ReadMax("new", 2)
	if !ok || ver != 2 || len(got.Fields) != 0 {
		t.Errorf("fresh item = %v v%d ok=%v, want empty v2", got, ver, ok)
	}
	if st := s.Stats(); st.Creations != 1 || st.Copies != 0 {
		t.Errorf("stats = %+v, want Creations=1 Copies=0", st)
	}
}

func TestApplyFromDualWrite(t *testing.T) {
	// The generalized dual write: item exists at versions 1 and 2; a
	// version-1 op must hit both, a version-2 op only version 2.
	s := New()
	s.Preload("D", rec(map[string]int64{"bal": 0}))
	s.EnsureVersion("D", 1)
	s.EnsureVersion("D", 2)
	if n := s.ApplyFrom("D", 1, model.AddOp{Field: "bal", Delta: 5}); n != 2 {
		t.Fatalf("ApplyFrom v1 touched %d versions, want 2", n)
	}
	if n := s.ApplyFrom("D", 2, model.AddOp{Field: "bal", Delta: 100}); n != 1 {
		t.Fatalf("ApplyFrom v2 touched %d versions, want 1", n)
	}
	check := func(v model.Version, want int64) {
		got, ver, _ := s.ReadMax("D", v)
		if ver != v || got.Field("bal") != want {
			t.Errorf("version %d bal = %d (found v%d), want %d", v, got.Field("bal"), ver, want)
		}
	}
	check(0, 0)
	check(1, 5)
	check(2, 105)
}

func TestApplyFromMissingItem(t *testing.T) {
	s := New()
	if n := s.ApplyFrom("ghost", 1, model.AddOp{Field: "x", Delta: 1}); n != 0 {
		t.Errorf("ApplyFrom on missing item touched %d versions", n)
	}
}

func TestApplyExact(t *testing.T) {
	s := New()
	s.Preload("A", rec(map[string]int64{"bal": 1}))
	s.EnsureVersion("A", 2)
	if !s.ApplyExact("A", 2, model.SetOp{Field: "bal", Value: 42}) {
		t.Fatal("ApplyExact on existing version failed")
	}
	if s.ApplyExact("A", 3, model.SetOp{Field: "bal", Value: 0}) {
		t.Error("ApplyExact on missing version succeeded")
	}
	if s.ApplyExact("nope", 0, model.SetOp{Field: "bal", Value: 0}) {
		t.Error("ApplyExact on missing item succeeded")
	}
	v2, _, _ := s.ReadMax("A", 2)
	v0, _, _ := s.ReadMax("A", 0)
	if v2.Field("bal") != 42 || v0.Field("bal") != 1 {
		t.Errorf("ApplyExact leaked across versions: v0=%d v2=%d", v0.Field("bal"), v2.Field("bal"))
	}
}

func TestRestore(t *testing.T) {
	s := New()
	s.Preload("A", rec(map[string]int64{"bal": 1}))
	s.EnsureVersion("A", 2)
	s.ApplyExact("A", 2, model.SetOp{Field: "bal", Value: 42})
	// Rollback via before-image.
	if !s.Restore("A", 2, rec(map[string]int64{"bal": 1}), false) {
		t.Fatal("Restore failed")
	}
	got, _, _ := s.ReadMax("A", 2)
	if got.Field("bal") != 1 {
		t.Errorf("after restore bal = %d, want 1", got.Field("bal"))
	}
	// Drop a created version entirely.
	if !s.Restore("A", 2, nil, true) {
		t.Fatal("Restore(drop) failed")
	}
	if s.Exists("A", 2) {
		t.Error("version 2 still exists after drop")
	}
	if s.Restore("A", 9, nil, true) {
		t.Error("Restore of missing version succeeded")
	}
	// Dropping the only version of an item removes the item.
	s.EnsureVersion("solo", 1)
	s.Restore("solo", 1, nil, true)
	if _, _, ok := s.ReadMax("solo", 99); ok {
		t.Error("item with all versions dropped still readable")
	}
}

func TestExistsAbove(t *testing.T) {
	s := New()
	s.Preload("A", rec(nil))
	s.EnsureVersion("A", 3)
	if !s.ExistsAbove("A", 2) {
		t.Error("ExistsAbove(A,2) = false with v3 live")
	}
	if s.ExistsAbove("A", 3) {
		t.Error("ExistsAbove(A,3) = true with nothing above v3")
	}
	if s.ExistsAbove("nope", 0) {
		t.Error("ExistsAbove on missing item = true")
	}
}

func TestGCDropsSuperseded(t *testing.T) {
	s := New()
	s.Preload("A", rec(map[string]int64{"bal": 1}))
	s.EnsureVersion("A", 1)
	s.ApplyFrom("A", 1, model.AddOp{Field: "bal", Delta: 10})
	s.EnsureVersion("A", 2)
	s.GC(1) // new read version 1: v0 must die, v1 and v2 survive
	vs := s.LiveVersions("A")
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Fatalf("LiveVersions after GC = %v, want [1 2]", vs)
	}
	got, ver, _ := s.ReadMax("A", 1)
	if ver != 1 || got.Field("bal") != 11 {
		t.Errorf("read v1 after GC = %v v%d, want bal=11", got, ver)
	}
	if st := s.Stats(); st.GCDropped != 1 || st.GCRuns != 1 {
		t.Errorf("stats = %+v, want GCDropped=1 GCRuns=1", st)
	}
}

func TestGCRenumbersUntouchedItem(t *testing.T) {
	// Item B was never written in version 1; GC to read version 1 must
	// renumber its v0 record to v1 ("changes the version number of the
	// latest earlier version to vrnew", Section 4.3 Phase 4).
	s := New()
	s.Preload("B", rec(map[string]int64{"bal": 3}))
	s.GC(1)
	vs := s.LiveVersions("B")
	if len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("LiveVersions after renumbering GC = %v, want [1]", vs)
	}
	got, ver, ok := s.ReadMax("B", 1)
	if !ok || ver != 1 || got.Field("bal") != 3 {
		t.Errorf("read after renumber = %v v%d ok=%v", got, ver, ok)
	}
	if st := s.Stats(); st.GCRenumbered != 1 {
		t.Errorf("GCRenumbered = %d, want 1", st.GCRenumbered)
	}
	// Item that only exists above vrNew is untouched.
	s.EnsureVersion("C", 5)
	s.GC(2)
	if vs := s.LiveVersions("C"); len(vs) != 1 || vs[0] != 5 {
		t.Errorf("GC touched item above vrNew: %v", vs)
	}
}

func TestGCRenumberDropsOlder(t *testing.T) {
	// Item with versions 0 and 1, GC to 2: v1 renumbered to 2, v0 dropped.
	s := New()
	s.Preload("A", rec(map[string]int64{"bal": 1}))
	s.EnsureVersion("A", 1)
	s.ApplyFrom("A", 1, model.AddOp{Field: "bal", Delta: 1})
	s.GC(2)
	vs := s.LiveVersions("A")
	if len(vs) != 1 || vs[0] != 2 {
		t.Fatalf("LiveVersions = %v, want [2]", vs)
	}
	got, _, _ := s.ReadMax("A", 2)
	if got.Field("bal") != 2 {
		t.Errorf("renumbered record bal = %d, want 2", got.Field("bal"))
	}
}

func TestMaxLiveVersionsAndKeys(t *testing.T) {
	s := New()
	s.Preload("A", rec(nil))
	s.Preload("B", rec(nil))
	s.EnsureVersion("A", 1)
	s.EnsureVersion("A", 2)
	if got := s.MaxLiveVersions(); got != 3 {
		t.Errorf("MaxLiveVersions = %d, want 3", got)
	}
	if st := s.Stats(); st.MaxLiveVersions != 3 {
		t.Errorf("Stats.MaxLiveVersions = %d, want 3", st.MaxLiveVersions)
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "A" || keys[1] != "B" {
		t.Errorf("Keys = %v, want [A B]", keys)
	}
	s.GC(2)
	if got := s.MaxLiveVersions(); got != 1 {
		t.Errorf("MaxLiveVersions after GC = %d, want 1", got)
	}
}

func TestPendingItemsAndDivergence(t *testing.T) {
	s := New()
	s.Preload("a", rec(map[string]int64{"bal": 10}))
	s.Preload("b", rec(map[string]int64{"bal": 5}))
	s.Preload("c", rec(map[string]int64{"bal": 0}))
	if got := s.PendingItems(0); got != 0 {
		t.Errorf("PendingItems with no updates = %d", got)
	}
	if got := s.Divergence(0, "bal"); got != 0 {
		t.Errorf("Divergence with no updates = %d", got)
	}
	s.EnsureVersion("a", 1)
	s.ApplyFrom("a", 1, model.AddOp{Field: "bal", Delta: 7})
	s.EnsureVersion("b", 1)
	s.ApplyFrom("b", 1, model.AddOp{Field: "bal", Delta: -3})
	if got := s.PendingItems(0); got != 2 {
		t.Errorf("PendingItems = %d, want 2", got)
	}
	if got := s.Divergence(0, "bal"); got != 10 { // |7| + |-3|
		t.Errorf("Divergence = %d, want 10", got)
	}
	// After "advancement" to vr=1 nothing is pending.
	if got := s.PendingItems(1); got != 0 {
		t.Errorf("PendingItems(1) = %d, want 0", got)
	}
	if got := s.Divergence(1, "bal"); got != 0 {
		t.Errorf("Divergence(1) = %d, want 0", got)
	}
	// A brand-new item (no readable floor) counts its whole value.
	s.EnsureVersion("new", 2)
	s.ApplyFrom("new", 2, model.AddOp{Field: "bal", Delta: 4})
	if got := s.Divergence(1, "bal"); got != 4 {
		t.Errorf("Divergence with fresh item = %d, want 4", got)
	}
}

func TestPeek(t *testing.T) {
	s := New()
	s.Preload("A", rec(map[string]int64{"x": 1}))
	if r, ok := s.Peek("A", 0); !ok || r.Field("x") != 1 {
		t.Errorf("Peek(A,0) = %v %v", r, ok)
	}
	if _, ok := s.Peek("A", 1); ok {
		t.Error("Peek(A,1) found nonexistent version")
	}
	if _, ok := s.Peek("Z", 0); ok {
		t.Error("Peek(Z,0) found nonexistent item")
	}
}

func TestDump(t *testing.T) {
	s := New()
	s.Preload("A", rec(map[string]int64{"bal": 2}))
	out := s.Dump()
	if out == "" || !containsStr(out, "A:") || !containsStr(out, "v0") {
		t.Errorf("Dump = %q", out)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestPropertyChainInvariants drives a random op sequence against one
// item and checks after every step that (a) live versions are strictly
// ascending, (b) ReadMax returns the floor version, (c) a higher
// version's record reflects every op applied at-or-below it since its
// creation — the dual-write consistency property the protocol depends
// on (a later version never "misses" an op applied via ApplyFrom at a
// lower version while both were live).
func TestPropertyChainInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		s.Preload("K", rec(map[string]int64{"bal": 0}))
		// shadow: for each live version, the expected field value.
		shadow := map[model.Version]int64{0: 0}
		live := []model.Version{0}
		maxVer := model.Version(0)
		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0: // create next version
				if len(live) < 3 {
					maxVer++
					s.EnsureVersion("K", maxVer)
					// copy from floor
					var floor model.Version
					for _, v := range live {
						if v <= maxVer && v >= floor {
							floor = v
						}
					}
					shadow[maxVer] = shadow[floor]
					live = append(live, maxVer)
				}
			case 1, 2: // apply from a random live version
				v := live[rng.Intn(len(live))]
				d := int64(rng.Intn(9) - 4)
				s.ApplyFrom("K", v, model.AddOp{Field: "bal", Delta: d})
				for _, lv := range live {
					if lv >= v {
						shadow[lv] += d
					}
				}
			case 3: // GC to a random live version
				v := live[rng.Intn(len(live))]
				s.GC(v)
				kept := live[:0]
				for _, lv := range live {
					if lv >= v {
						kept = append(kept, lv)
					} else {
						delete(shadow, lv)
					}
				}
				live = kept
			}
			// Verify all live versions.
			got := s.LiveVersions("K")
			if len(got) != len(live) {
				return false
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					return false
				}
			}
			for _, v := range live {
				r, ver, ok := s.ReadMax("K", v)
				if !ok || ver != v || r.Field("bal") != shadow[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	// Smoke test under the race detector: concurrent ensures, applies,
	// reads and GCs must not corrupt the store.
	s := New()
	for i := 0; i < 8; i++ {
		s.Preload(fmt.Sprintf("k%d", i), rec(map[string]int64{"bal": 0}))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", rng.Intn(8))
				switch rng.Intn(4) {
				case 0:
					s.EnsureVersion(k, model.Version(rng.Intn(3)))
				case 1:
					s.ApplyFrom(k, model.Version(rng.Intn(3)), model.AddOp{Field: "bal", Delta: 1})
				case 2:
					s.ReadMax(k, model.Version(rng.Intn(3)))
				case 3:
					s.Exists(k, model.Version(rng.Intn(3)))
				}
			}
		}(g)
	}
	wg.Wait()
	if s.MaxLiveVersions() > 3 {
		t.Errorf("MaxLiveVersions = %d after concurrent churn", s.MaxLiveVersions())
	}
}

func TestHasVersionsBelow(t *testing.T) {
	s := New()
	s.Preload("A", rec(map[string]int64{"bal": 1}))
	if s.HasVersionsBelow(0) {
		t.Error("HasVersionsBelow(0) with only v0 = true")
	}
	if !s.HasVersionsBelow(1) {
		t.Error("HasVersionsBelow(1) with v0 live = false")
	}
	s.GC(1)
	if s.HasVersionsBelow(1) {
		t.Error("HasVersionsBelow(1) after GC = true")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := New()
	s.Preload("a", rec(map[string]int64{"bal": 1}))
	s.EnsureVersion("a", 1)
	s.ApplyFrom("a", 1, model.AddOp{Field: "bal", Delta: 10})
	s.Preload("b", rec(map[string]int64{"bal": 5}))
	AppendTupleForTest(s)

	exported := s.Export()
	if len(exported) != 2 || exported[0].Key != "a" || exported[1].Key != "b" {
		t.Fatalf("export = %+v", exported)
	}
	// Exported records are deep copies.
	exported[0].Versions[0].Rec.Fields["bal"] = 999
	if got, _, _ := s.ReadMax("a", 0); got.Field("bal") != 1 {
		t.Error("export aliases live records")
	}

	dst := New()
	dst.Import(s.Export())
	for _, key := range []string{"a", "b"} {
		for _, v := range s.LiveVersions(key) {
			want, _ := s.Peek(key, v)
			got, ok := dst.Peek(key, v)
			if !ok || !got.Equal(want) {
				t.Errorf("%s@v%d differs after import: %v vs %v", key, v, got, want)
			}
		}
	}
	if dst.Stats().MaxLiveVersions != 2 {
		t.Errorf("imported high-water mark = %d, want 2", dst.Stats().MaxLiveVersions)
	}
	// Import replaces prior contents entirely.
	dst.Import(nil)
	if len(dst.Keys()) != 0 {
		t.Errorf("Import(nil) left keys: %v", dst.Keys())
	}
}

// TestExportShardEquivalence checks that concatenating every shard's
// export equals the monolithic Export (up to the global key sort) and
// feeds Import identically — the property the streaming checkpoint
// writer relies on.
func TestExportShardEquivalence(t *testing.T) {
	s := New()
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%03d", i)
		s.Preload(k, rec(map[string]int64{"bal": int64(i)}))
		if i%3 == 0 {
			s.EnsureVersion(k, 1)
			s.ApplyFrom(k, 1, model.AddOp{Field: "bal", Delta: 7})
		}
	}
	var concat []ExportedItem
	for i := 0; i < s.ShardCount(); i++ {
		concat = append(concat, s.ExportShard(i)...)
	}
	sort.Slice(concat, func(i, j int) bool { return concat[i].Key < concat[j].Key })
	whole := s.Export()
	if len(concat) != len(whole) {
		t.Fatalf("per-shard export has %d items, Export has %d", len(concat), len(whole))
	}
	for i := range whole {
		if concat[i].Key != whole[i].Key || len(concat[i].Versions) != len(whole[i].Versions) {
			t.Fatalf("item %d differs: %+v vs %+v", i, concat[i], whole[i])
		}
		for j := range whole[i].Versions {
			if concat[i].Versions[j].Ver != whole[i].Versions[j].Ver ||
				!concat[i].Versions[j].Rec.Equal(whole[i].Versions[j].Rec) {
				t.Fatalf("item %s v#%d differs", whole[i].Key, j)
			}
		}
	}

	dst := New()
	dst.Import(concat)
	for _, key := range s.Keys() {
		for _, v := range s.LiveVersions(key) {
			want, _ := s.Peek(key, v)
			got, ok := dst.Peek(key, v)
			if !ok || !got.Equal(want) {
				t.Fatalf("%s@v%d differs after per-shard import", key, v)
			}
		}
	}
}

// AppendTupleForTest puts a tuple in b's log so export covers logs too.
func AppendTupleForTest(s *Store) {
	s.ApplyFrom("b", 0, model.AppendOp{T: model.Tuple{Txn: 9, Part: 1, Total: 1, Attr: "x", Amount: 2}})
}
