// Package storage implements the per-node multiversion storage engine
// the 3V algorithm runs on (Section 4 of the paper). Each data item
// keeps a short chain of versions — at most three are ever live under
// 3V — and supports the two primitives the paper assumes can be
// answered efficiently:
//
//  1. "Does data item x exist in version v?"
//  2. "Locate data item x with version v."
//
// plus the derived primitives the protocol needs:
//
//   - ReadMax: read the maximum existing version of x not exceeding v
//     (used by both update and query subtransactions, Sections 4.1/4.2);
//   - EnsureVersion: atomically check-and-create version v of x by
//     copying the maximum existing version below it (copy-on-update,
//     Section 2.2);
//   - ApplyFrom: apply an operation to every existing version ≥ v (the
//     generalized dual write of Sections 2.3/4.1 step 4);
//   - GC: the garbage-collection step of advancement Phase 4, which
//     deletes versions superseded by the new read version and renumbers
//     the latest survivor when the new read version was never
//     materialized for an item.
//
// The engine also keeps the space accounting (copies made, bytes
// copied, live-version high-water mark) used by experiments E4 and E8.
//
// # Sharding
//
// The store is hash-partitioned into a GOMAXPROCS-scaled power-of-two
// number of shards, each with its own RWMutex, item map and accounting,
// so concurrent subtransactions touching different items never contend
// on a store-global lock — the paper's whole point is that nothing
// node-global ever delays a user transaction, and a single storage
// mutex was exactly such a delay. A key's shard is fixed (maphash of
// the key), so the per-item atomicity the protocol needs from
// EnsureVersion is provided by that one shard's lock. Whole-store
// operations (GC, Export, Stats, ...) visit shards one at a time and
// are not atomic across shards; every such caller either runs during
// protocol phases that guarantee quiescence of the affected versions
// (GC, Import) or is an explicitly best-effort observer (Stats,
// PendingItems, Divergence — the advancement trigger gauges).
package storage

import (
	"fmt"
	"hash/maphash"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// versioned is one version of one item.
type versioned struct {
	ver model.Version
	rec *model.Record
}

// chain is the ordered (ascending by version) list of live versions of
// a single item. Under 3V its length never exceeds three; the engine
// does not enforce that bound (it is the protocol's invariant, asserted
// by the verifier) but it does record the high-water mark.
type chain struct {
	versions []versioned
}

// shard is one hash partition of the store: a private map, lock and
// accounting. reads/applies stay atomics because they are bumped on
// paths that hold only the shard read lock.
type shard struct {
	mu      sync.RWMutex
	items   map[string]*chain
	stats   Stats // guarded by mu; Reads/Applies/GCRuns unused here
	reads   atomic.Int64
	applies atomic.Int64
}

// Store is one node's versioned storage. All exported methods are safe
// for concurrent use; the protocol layers per-item local concurrency
// control on top (package localcc), so intra-item atomicity beyond the
// single-call level is the caller's concern — except EnsureVersion,
// whose check-and-create is atomic as the paper requires (it holds the
// item's shard lock for the whole check-and-create).
type Store struct {
	seed   maphash.Seed
	shards []*shard
	gcRuns atomic.Int64 // GC() sweeps are store-wide; counted once each
}

// Stats is the space/copy accounting of a store. Counters only grow.
type Stats struct {
	// Copies is the number of record materializations performed by
	// EnsureVersion (each is one whole-record copy).
	Copies int64
	// BytesCopied approximates the bytes duplicated by those copies.
	BytesCopied int64
	// Creations counts versions created from nothing (item did not
	// previously exist in any version ≤ the target).
	Creations int64
	// MaxLiveVersions is the largest number of simultaneously live
	// versions ever observed for any single item.
	MaxLiveVersions int
	// GCRuns counts garbage-collection sweeps; GCDropped counts
	// versions deleted by them; GCRenumbered counts survivors whose
	// version number was advanced in place.
	GCRuns       int64
	GCDropped    int64
	GCRenumbered int64
	// Reads counts ReadMax calls (versioned point reads); Applies
	// counts operation applications across versions by ApplyFrom —
	// the storage-level traffic gauges behind the obs snapshot.
	Reads   int64
	Applies int64
}

// shardCount returns the number of shards for a new store: a power of
// two scaled to 4× GOMAXPROCS (so collisions between concurrently
// running workers are rare), clamped to [8, 256].
func shardCount() int {
	target := 4 * runtime.GOMAXPROCS(0)
	n := 8
	for n < target && n < 256 {
		n <<= 1
	}
	return n
}

// New returns an empty store.
func New() *Store {
	s := &Store{
		seed:   maphash.MakeSeed(),
		shards: make([]*shard, shardCount()),
	}
	for i := range s.shards {
		s.shards[i] = &shard{items: make(map[string]*chain)}
	}
	return s
}

// shardFor maps a key to its (fixed) shard.
func (s *Store) shardFor(key string) *shard {
	return s.shards[maphash.String(s.seed, key)&uint64(len(s.shards)-1)]
}

// Preload installs an initial version-0 record for key, as in the
// paper's initial state where "all records exist in a single version
// 0". It overwrites any existing chain for the key and performs no
// accounting; use it only during cluster setup.
func (s *Store) Preload(key string, rec *model.Record) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.items[key] = &chain{versions: []versioned{{ver: 0, rec: rec}}}
}

// Exists reports whether version v of item key exists (paper primitive 1).
func (s *Store) Exists(key string, v model.Version) bool {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ch := sh.items[key]
	if ch == nil {
		return false
	}
	_, ok := ch.find(v)
	return ok
}

// ExistsAbove reports whether the item exists in any version strictly
// greater than v. The NC3V algorithm aborts a non-commuting transaction
// that would update such an item (Section 5 step 4).
func (s *Store) ExistsAbove(key string, v model.Version) bool {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ch := sh.items[key]
	if ch == nil {
		return false
	}
	n := len(ch.versions)
	return n > 0 && ch.versions[n-1].ver > v
}

// ReadMax returns a stable snapshot of the maximum existing version of
// key that does not exceed v, along with the version found. ok is
// false if the item does not exist in any version ≤ v. The snapshot's
// summary fields are a private copy; its tuple log is shared
// copy-on-write with the live record.
func (s *Store) ReadMax(key string, v model.Version) (rec *model.Record, found model.Version, ok bool) {
	sh := s.shardFor(key)
	sh.reads.Add(1)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ch := sh.items[key]
	if ch == nil {
		return nil, 0, false
	}
	i := ch.floorIndex(v)
	if i < 0 {
		return nil, 0, false
	}
	// A read snapshot shares the tuple log copy-on-write (ShareClone):
	// point reads were the second-largest allocation source under load,
	// and concurrent dual-write appends can never reach a snapshot's
	// trimmed view.
	return ch.versions[i].rec.ShareClone(), ch.versions[i].ver, true
}

// Peek returns the live record of exactly version v without copying.
// The caller must hold the item's local latch and must not retain the
// pointer past the latched section. ok is false if that exact version
// does not exist.
func (s *Store) Peek(key string, v model.Version) (rec *model.Record, ok bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ch := sh.items[key]
	if ch == nil {
		return nil, false
	}
	return ch.find(v)
}

// EnsureVersion atomically checks whether version v of key exists and,
// if not, creates it by deep-copying the maximum existing version below
// v; if the item does not exist at all, a fresh empty record is created
// at version v. It returns created=true when a new version was
// materialized. This is the atomic check-and-create of Section 4.1
// step 4 (and Section 5 step 4 for NC3V).
func (s *Store) EnsureVersion(key string, v model.Version) (created bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ch := sh.items[key]
	if ch == nil {
		ch = &chain{}
		sh.items[key] = ch
	}
	if _, ok := ch.find(v); ok {
		return false
	}
	var rec *model.Record
	if i := ch.floorIndex(v); i >= 0 {
		rec = ch.versions[i].rec.Clone()
		sh.stats.Copies++
		sh.stats.BytesCopied += rec.SizeBytes()
	} else {
		rec = model.NewRecord()
		sh.stats.Creations++
	}
	ch.insert(versioned{ver: v, rec: rec})
	if n := len(ch.versions); n > sh.stats.MaxLiveVersions {
		sh.stats.MaxLiveVersions = n
	}
	return true
}

// ApplyFrom applies op to every existing version of key that is greater
// than or equal to v — step 4 of the subtransaction algorithm: "Once
// x(V(T)) exists, update all versions of x greater or equal to version
// V(T)". Callers must have called EnsureVersion(key, v) first (the
// protocol always does); ApplyFrom returns the number of versions the
// op was applied to, which is 0 only on protocol misuse.
func (s *Store) ApplyFrom(key string, v model.Version, op model.Op) int {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ch := sh.items[key]
	if ch == nil {
		return 0
	}
	n := 0
	for _, ver := range ch.versions {
		if ver.ver >= v {
			op.Apply(ver.rec)
			n++
		}
	}
	sh.applies.Add(int64(n))
	return n
}

// ApplyExact applies op to exactly version v of key (used by NC3V,
// which never dual-writes: non-commuting transactions update only their
// own version). It reports whether the version existed.
func (s *Store) ApplyExact(key string, v model.Version, op model.Op) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ch := sh.items[key]
	if ch == nil {
		return false
	}
	rec, ok := ch.find(v)
	if !ok {
		return false
	}
	op.Apply(rec)
	return true
}

// Restore overwrites version v of key with the given record
// (before-image rollback for NC3V aborts). It reports whether the
// version existed. If drop is true the version is instead removed
// entirely (the aborting transaction had created it).
func (s *Store) Restore(key string, v model.Version, rec *model.Record, drop bool) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ch := sh.items[key]
	if ch == nil {
		return false
	}
	for i := range ch.versions {
		if ch.versions[i].ver == v {
			if drop {
				ch.versions = append(ch.versions[:i], ch.versions[i+1:]...)
				if len(ch.versions) == 0 {
					delete(sh.items, key)
				}
			} else {
				ch.versions[i].rec = rec.Clone()
			}
			return true
		}
	}
	return false
}

// GC performs the per-node garbage collection of advancement Phase 4
// with new read version vrNew: for every item, if version vrNew exists
// all earlier versions are deleted; otherwise the latest earlier
// version is renumbered to vrNew. Versions above vrNew (the current
// update version's data) are untouched.
//
// The sweep locks one shard at a time. Cross-shard atomicity is not
// needed: GC runs only after quiescence of every version below vrNew
// has been detected (Phase 2), so no live subtransaction can observe a
// version this sweep removes, and readers at vrNew or above see every
// item unchanged from their perspective mid-sweep.
func (s *Store) GC(vrNew model.Version) { s.GCFunc(vrNew, nil) }

// GCFunc is GC restricted to the keys pred accepts (nil accepts every
// key). The partitioned cluster passes the owner-partition predicate so
// a Phase 4 sweep for one partition never collects — or renumbers —
// versions belonging to keys of another partition, whose own epoch may
// still be behind.
func (s *Store) GCFunc(vrNew model.Version, pred func(key string) bool) {
	s.gcRuns.Add(1)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for key, ch := range sh.items {
			if pred != nil && !pred(key) {
				continue
			}
			if _, ok := ch.find(vrNew); ok {
				kept := ch.versions[:0]
				for _, v := range ch.versions {
					if v.ver >= vrNew {
						kept = append(kept, v)
					} else {
						sh.stats.GCDropped++
					}
				}
				ch.versions = kept
				continue
			}
			// vrNew does not exist: renumber the latest earlier version to
			// vrNew so future "max existing ≤ v" lookups stay correct, and
			// drop anything older than it.
			i := ch.floorIndex(vrNew)
			if i < 0 {
				continue // item only exists in versions above vrNew
			}
			ch.versions[i].ver = vrNew
			sh.stats.GCRenumbered++
			if i > 0 {
				sh.stats.GCDropped += int64(i)
				ch.versions = append(ch.versions[:0], ch.versions[i:]...)
			}
		}
		sh.mu.Unlock()
	}
}

// ExportedVersion is one serializable version of one item.
type ExportedVersion struct {
	Ver model.Version
	Rec *model.Record
}

// ExportedItem is one item's full version chain in serializable form.
type ExportedItem struct {
	Key      string
	Versions []ExportedVersion
}

// Export returns a deep copy of the whole store in serializable form
// (items sorted by key, versions ascending) for snapshot persistence.
// The copy is per-shard-consistent; callers quiesce the store for a
// cross-item point-in-time snapshot (the snapshot layer does).
func (s *Store) Export() []ExportedItem {
	var out []ExportedItem
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, ch := range sh.items {
			item := ExportedItem{Key: k, Versions: make([]ExportedVersion, 0, len(ch.versions))}
			for _, v := range ch.versions {
				item.Versions = append(item.Versions, ExportedVersion{Ver: v.ver, Rec: v.rec.Clone()})
			}
			out = append(out, item)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ShardCount returns the number of shards, the index domain of
// ExportShard.
func (s *Store) ShardCount() int { return len(s.shards) }

// ExportShard deep-copies one shard's items (sorted by key, versions
// ascending). The checkpoint writer streams shard-by-shard so a large
// store never needs one monolithic copy in memory; concatenating every
// shard's export is equivalent to Export up to item order, and Import
// accepts it unchanged.
func (s *Store) ExportShard(i int) []ExportedItem {
	sh := s.shards[i]
	sh.mu.RLock()
	out := make([]ExportedItem, 0, len(sh.items))
	for k, ch := range sh.items {
		item := ExportedItem{Key: k, Versions: make([]ExportedVersion, 0, len(ch.versions))}
		for _, v := range ch.versions {
			item.Versions = append(item.Versions, ExportedVersion{Ver: v.ver, Rec: v.rec.Clone()})
		}
		out = append(out, item)
	}
	sh.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Import replaces the store's contents with the exported items (deep
// copied). Accounting stats are reset; the live-version high-water mark
// restarts from the imported chains.
func (s *Store) Import(items []ExportedItem) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.items = make(map[string]*chain)
		sh.stats = Stats{}
		sh.reads.Store(0)
		sh.applies.Store(0)
		sh.mu.Unlock()
	}
	s.gcRuns.Store(0)
	for _, item := range items {
		ch := &chain{versions: make([]versioned, 0, len(item.Versions))}
		for _, v := range item.Versions {
			ch.versions = append(ch.versions, versioned{ver: v.Ver, rec: v.Rec.Clone()})
		}
		sort.Slice(ch.versions, func(i, j int) bool { return ch.versions[i].ver < ch.versions[j].ver })
		sh := s.shardFor(item.Key)
		sh.mu.Lock()
		sh.items[item.Key] = ch
		if n := len(ch.versions); n > sh.stats.MaxLiveVersions {
			sh.stats.MaxLiveVersions = n
		}
		sh.mu.Unlock()
	}
}

// PendingItems reports how many items have a live version strictly
// greater than vr — i.e. carry updates not yet visible to readers. The
// advancement trigger policies (paper §1, "Desired Solution": advance
// "once a certain number of update transactions have accumulated, or
// when the difference in value of data items in different versions
// exceeds some threshold") use it to decide when to advance.
func (s *Store) PendingItems(vr model.Version) int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, ch := range sh.items {
			if len(ch.versions) > 0 && ch.versions[len(ch.versions)-1].ver > vr {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// Divergence sums, over all items, the absolute difference of the
// named summary field between the newest live version and the version
// a reader at vr would see — the paper's "difference in value of data
// items in different versions" trigger quantity.
func (s *Store) Divergence(vr model.Version, field string) int64 {
	var total int64
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, ch := range sh.items {
			if len(ch.versions) == 0 {
				continue
			}
			newest := ch.versions[len(ch.versions)-1]
			if newest.ver <= vr {
				continue
			}
			var readable int64
			if i := ch.floorIndex(vr); i >= 0 {
				readable = ch.versions[i].rec.Field(field)
			}
			d := newest.rec.Field(field) - readable
			if d < 0 {
				d = -d
			}
			total += d
		}
		sh.mu.RUnlock()
	}
	return total
}

// HasVersionsBelow reports whether any item still holds a live version
// strictly below v — i.e. garbage collection up to v has not run. A
// recovering coordinator uses it to detect an interrupted Phase 4.
func (s *Store) HasVersionsBelow(v model.Version) bool {
	return s.HasVersionsBelowFunc(v, nil)
}

// HasVersionsBelowFunc is HasVersionsBelow restricted to the keys pred
// accepts (nil accepts every key); the partitioned recovery path scopes
// the interrupted-GC probe to one partition's keys.
func (s *Store) HasVersionsBelowFunc(v model.Version, pred func(key string) bool) bool {
	for _, sh := range s.shards {
		sh.mu.RLock()
		for key, ch := range sh.items {
			if pred != nil && !pred(key) {
				continue
			}
			if len(ch.versions) > 0 && ch.versions[0].ver < v {
				sh.mu.RUnlock()
				return true
			}
		}
		sh.mu.RUnlock()
	}
	return false
}

// LiveVersions returns the versions currently live for key, ascending.
func (s *Store) LiveVersions(key string) []model.Version {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ch := sh.items[key]
	if ch == nil {
		return nil
	}
	out := make([]model.Version, len(ch.versions))
	for i, v := range ch.versions {
		out[i] = v.ver
	}
	return out
}

// Keys returns all item keys in sorted order.
func (s *Store) Keys() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k := range sh.items {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// MaxLiveVersions returns the largest number of simultaneously live
// versions any item currently has (not the historical high-water mark;
// see Stats for that).
func (s *Store) MaxLiveVersions() int {
	max := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, ch := range sh.items {
			if n := len(ch.versions); n > max {
				max = n
			}
		}
		sh.mu.RUnlock()
	}
	return max
}

// Stats returns a copy of the accounting counters, aggregated across
// shards (sums; MaxLiveVersions is the max over shards). The aggregate
// is best-effort under concurrent mutation, like any gauge read.
func (s *Store) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		sh.mu.RLock()
		st := sh.stats
		sh.mu.RUnlock()
		out.Copies += st.Copies
		out.BytesCopied += st.BytesCopied
		out.Creations += st.Creations
		out.GCDropped += st.GCDropped
		out.GCRenumbered += st.GCRenumbered
		if st.MaxLiveVersions > out.MaxLiveVersions {
			out.MaxLiveVersions = st.MaxLiveVersions
		}
		out.Reads += sh.reads.Load()
		out.Applies += sh.applies.Load()
	}
	out.GCRuns = s.gcRuns.Load()
	return out
}

// Dump renders the whole store for traces and debugging: every item
// with its live versions.
func (s *Store) Dump() string {
	type kv struct {
		key string
		ch  *chain
	}
	var all []kv
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, ch := range sh.items {
			all = append(all, kv{k, ch})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	out := ""
	for _, e := range all {
		out += e.key + ":"
		sh := s.shardFor(e.key)
		sh.mu.RLock()
		for _, v := range e.ch.versions {
			out += fmt.Sprintf(" v%d=%v", v.ver, v.rec)
		}
		sh.mu.RUnlock()
		out += "\n"
	}
	return out
}

// find returns the record at exactly version v.
func (c *chain) find(v model.Version) (*model.Record, bool) {
	for _, e := range c.versions {
		if e.ver == v {
			return e.rec, true
		}
	}
	return nil, false
}

// floorIndex returns the index of the maximum version ≤ v, or -1.
func (c *chain) floorIndex(v model.Version) int {
	best := -1
	for i, e := range c.versions {
		if e.ver <= v {
			best = i
		} else {
			break
		}
	}
	return best
}

// insert adds e keeping ascending version order.
func (c *chain) insert(e versioned) {
	i := len(c.versions)
	for i > 0 && c.versions[i-1].ver > e.ver {
		i--
	}
	c.versions = append(c.versions, versioned{})
	copy(c.versions[i+1:], c.versions[i:])
	c.versions[i] = e
}
