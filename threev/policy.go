package threev

import (
	"sync"
	"time"
)

// Trigger decides whether a version advancement should run now. The
// policy loop evaluates it periodically; returning true fires one
// advancement cycle. Triggers may keep state in their closure (e.g.
// the update count at the last advancement).
//
// The paper's "Desired Solution" (§1) lists the policies users should
// be able to choose: "advance versions every hour, or once a certain
// number of update transactions have accumulated, or when the
// difference in value of data items in different versions exceeds some
// threshold, or after a particular update transaction commits." The
// first is StartAutoAdvance; the others are the built-in triggers
// below, and "after a particular transaction" is simply calling
// Advance after its handle completes.
type Trigger func(db *DB) bool

// EveryNUpdates fires whenever n more update transactions have
// committed since the last firing.
func EveryNUpdates(n int64) Trigger {
	var last int64
	return func(db *DB) bool {
		cur := db.cluster.CommittedUpdates()
		if cur-last >= n {
			last = cur
			return true
		}
		return false
	}
}

// PendingItemsAbove fires when more than n items cluster-wide carry
// updates not yet visible to readers.
func PendingItemsAbove(n int) Trigger {
	return func(db *DB) bool {
		return db.cluster.PendingItems() > n
	}
}

// DivergenceAbove fires when the summed per-item difference of the
// named summary field between the update and read versions exceeds
// threshold — "when the difference in value of data items in different
// versions exceeds some threshold".
func DivergenceAbove(field string, threshold int64) Trigger {
	return func(db *DB) bool {
		return db.cluster.Divergence(field) > threshold
	}
}

// AnyOf combines triggers: fires when any constituent fires. All
// constituents are evaluated on every check so stateful triggers keep
// their counters current.
func AnyOf(triggers ...Trigger) Trigger {
	return func(db *DB) bool {
		fire := false
		for _, t := range triggers {
			if t(db) {
				fire = true
			}
		}
		return fire
	}
}

// policyLoop is the running policy goroutine's handle.
type policyLoop struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

// StartPolicy evaluates trigger every checkEvery and runs one
// advancement cycle each time it fires. Stop it with StopPolicy or
// Close. Starting a second policy while one runs is a no-op (the paper
// assumes at most one advancement driver; the coordinator additionally
// serializes cycles).
func (db *DB) StartPolicy(checkEvery time.Duration, trigger Trigger) {
	db.autoMu.Lock()
	defer db.autoMu.Unlock()
	if db.policy != nil {
		return
	}
	pl := &policyLoop{stop: make(chan struct{})}
	db.policy = pl
	pl.wg.Add(1)
	go func() {
		defer pl.wg.Done()
		t := time.NewTicker(checkEvery)
		defer t.Stop()
		for {
			select {
			case <-pl.stop:
				return
			case <-t.C:
				if trigger(db) {
					db.cluster.Advance()
				}
			}
		}
	}()
}

// StopPolicy halts the policy loop, waiting for an in-flight cycle.
func (db *DB) StopPolicy() {
	db.autoMu.Lock()
	pl := db.policy
	db.policy = nil
	db.autoMu.Unlock()
	if pl != nil {
		close(pl.stop)
		pl.wg.Wait()
	}
}

// CommittedUpdates returns the number of update transactions that have
// fully committed.
func (db *DB) CommittedUpdates() int64 { return db.cluster.CommittedUpdates() }

// PendingItems returns the number of items cluster-wide carrying
// updates not yet visible to readers.
func (db *DB) PendingItems() int { return db.cluster.PendingItems() }

// Divergence returns the summed per-item difference of the named field
// between the update and read versions.
func (db *DB) Divergence(field string) int64 { return db.cluster.Divergence(field) }
