package threev

import (
	"testing"
	"time"
)

// submitAndWait runs one single-node increment and waits for it.
func submitAndWait(t *testing.T, db *DB, key string) {
	t.Helper()
	h, err := db.Submit(At(0).Add(key, "bal", 1).Update())
	if err != nil {
		t.Fatal(err)
	}
	if !h.WaitTimeout(5 * time.Second) {
		t.Fatal("update timed out")
	}
}

func TestCommittedUpdatesCounter(t *testing.T) {
	db := openTestDB(t, Config{})
	db.Preload(0, "k", map[string]int64{"bal": 0})
	for i := 0; i < 5; i++ {
		submitAndWait(t, db, "k")
	}
	if got := db.CommittedUpdates(); got != 5 {
		t.Errorf("CommittedUpdates = %d, want 5", got)
	}
	// Reads do not count.
	q, _ := db.Submit(At(0).Read("k").Query())
	q.Wait()
	if got := db.CommittedUpdates(); got != 5 {
		t.Errorf("CommittedUpdates after read = %d, want 5", got)
	}
}

func TestPendingAndDivergenceQuantities(t *testing.T) {
	db := openTestDB(t, Config{})
	db.Preload(0, "a", map[string]int64{"bal": 0})
	db.Preload(1, "b", map[string]int64{"bal": 0})
	if db.PendingItems() != 0 || db.Divergence("bal") != 0 {
		t.Fatal("fresh DB shows pending updates")
	}
	h, _ := db.Submit(At(0).Add("a", "bal", 7).
		Child(At(1).Add("b", "bal", 3)).Update())
	h.Wait()
	if got := db.PendingItems(); got != 2 {
		t.Errorf("PendingItems = %d, want 2", got)
	}
	if got := db.Divergence("bal"); got != 10 {
		t.Errorf("Divergence = %d, want 10", got)
	}
	db.Advance()
	if got := db.PendingItems(); got != 0 {
		t.Errorf("PendingItems after advance = %d, want 0", got)
	}
	if got := db.Divergence("bal"); got != 0 {
		t.Errorf("Divergence after advance = %d, want 0", got)
	}
}

func TestEveryNUpdatesTrigger(t *testing.T) {
	db := openTestDB(t, Config{})
	db.Preload(0, "k", map[string]int64{"bal": 0})
	trig := EveryNUpdates(3)
	if trig(db) {
		t.Fatal("trigger fired with no updates")
	}
	for i := 0; i < 3; i++ {
		submitAndWait(t, db, "k")
	}
	if !trig(db) {
		t.Fatal("trigger did not fire after 3 updates")
	}
	if trig(db) {
		t.Fatal("trigger re-fired without new updates (state not advanced)")
	}
	for i := 0; i < 3; i++ {
		submitAndWait(t, db, "k")
	}
	if !trig(db) {
		t.Fatal("trigger did not fire after 3 more updates")
	}
}

func TestDivergenceAndPendingTriggers(t *testing.T) {
	db := openTestDB(t, Config{})
	db.Preload(0, "k", map[string]int64{"bal": 0})
	dv := DivergenceAbove("bal", 2)
	pi := PendingItemsAbove(0)
	if dv(db) || pi(db) {
		t.Fatal("triggers fired on a clean DB")
	}
	for i := 0; i < 3; i++ {
		submitAndWait(t, db, "k")
	}
	if !dv(db) {
		t.Error("divergence trigger did not fire at divergence 3 > 2")
	}
	if !pi(db) {
		t.Error("pending trigger did not fire with 1 pending item")
	}
	db.Advance()
	if dv(db) || pi(db) {
		t.Error("triggers still firing after advancement")
	}
}

func TestAnyOfEvaluatesAll(t *testing.T) {
	db := openTestDB(t, Config{})
	db.Preload(0, "k", map[string]int64{"bal": 0})
	aCalls, bCalls := 0, 0
	a := func(*DB) bool { aCalls++; return false }
	b := func(*DB) bool { bCalls++; return true }
	combo := AnyOf(a, b)
	if !combo(db) {
		t.Fatal("AnyOf missed a firing constituent")
	}
	if aCalls != 1 || bCalls != 1 {
		t.Errorf("constituents called %d/%d times, want 1/1", aCalls, bCalls)
	}
}

func TestStartPolicyAdvancesOnTrigger(t *testing.T) {
	db := openTestDB(t, Config{})
	db.Preload(0, "k", map[string]int64{"bal": 0})
	db.StartPolicy(time.Millisecond, EveryNUpdates(2))
	db.StartPolicy(time.Millisecond, EveryNUpdates(2)) // second start is a no-op
	for i := 0; i < 4; i++ {
		submitAndWait(t, db, "k")
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(db.AdvanceHistory()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("policy never advanced")
		}
		time.Sleep(time.Millisecond)
	}
	db.StopPolicy()
	db.StopPolicy() // idempotent
	// After the policy advanced, the updates are visible.
	deadlineRead := time.Now().Add(5 * time.Second)
	for {
		q, _ := db.Submit(At(0).Read("k").Query())
		q.Wait()
		if q.Reads()[0].Record.Field("bal") == 4 {
			break
		}
		if time.Now().After(deadlineRead) {
			t.Fatalf("reads never caught up: bal=%d", q.Reads()[0].Record.Field("bal"))
		}
		db.Advance()
	}
}
