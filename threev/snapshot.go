package threev

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// Snapshot persistence: SaveSnapshot writes a quiesced database's full
// state (every node's versioned items, the version numbers, the
// transaction sequence) to a single file; OpenSnapshot rebuilds a
// running DB from it. The file is gob-encoded with a magic header and a
// CRC32 trailer so truncated or corrupted files are rejected rather
// than silently loaded.
//
// Snapshots require quiescence: finish (Wait on) all submitted
// transactions and stop any advancement policy first. SaveSnapshot
// verifies the protocol-visible part of that condition via the
// request/completion counters and refuses otherwise.

// snapshotMagic identifies the file format; bump the version suffix on
// incompatible changes.
const snapshotMagic = "threev-snapshot-v1"

// fileSnapshot is the on-disk envelope.
type fileSnapshot struct {
	Magic string
	State *core.ClusterSnapshot
}

// SaveSnapshot writes the database state to path (atomically, via a
// temp file in the same directory).
func (db *DB) SaveSnapshot(path string) error {
	state, err := db.cluster.ExportSnapshot()
	if err != nil {
		return fmt.Errorf("threev: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".threev-snap-*")
	if err != nil {
		return fmt.Errorf("threev: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name())

	crc := crc32.NewIEEE()
	enc := gob.NewEncoder(io.MultiWriter(tmp, crc))
	if err := enc.Encode(fileSnapshot{Magic: snapshotMagic, State: state}); err != nil {
		tmp.Close()
		return fmt.Errorf("threev: encode snapshot: %w", err)
	}
	if _, err := tmp.Write(crc.Sum(nil)); err != nil {
		tmp.Close()
		return fmt.Errorf("threev: write checksum: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("threev: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("threev: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("threev: install snapshot: %w", err)
	}
	return nil
}

// OpenSnapshot builds and starts a DB from a snapshot file. The
// snapshot fixes the node count; cfg supplies everything else (network
// shape, NC mode, ...). cfg.Nodes, if nonzero, must match the snapshot.
func OpenSnapshot(path string, cfg Config) (*DB, error) {
	state, err := readSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	if cfg.Nodes != 0 && cfg.Nodes != state.Nodes {
		return nil, fmt.Errorf("threev: snapshot has %d nodes, config asks for %d", state.Nodes, cfg.Nodes)
	}
	cfg.Nodes = state.Nodes
	db, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	if err := db.cluster.RestoreSnapshot(state); err != nil {
		db.Close()
		return nil, fmt.Errorf("threev: %w", err)
	}
	return db, nil
}

// readSnapshotFile loads, checksum-verifies and decodes a snapshot.
func readSnapshotFile(path string) (*core.ClusterSnapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("threev: read snapshot: %w", err)
	}
	if len(raw) < crc32.Size {
		return nil, fmt.Errorf("threev: snapshot %q truncated (%d bytes)", path, len(raw))
	}
	body, sum := raw[:len(raw)-crc32.Size], raw[len(raw)-crc32.Size:]
	crc := crc32.NewIEEE()
	crc.Write(body)
	got := crc.Sum(nil)
	for i := range got {
		if got[i] != sum[i] {
			return nil, fmt.Errorf("threev: snapshot %q failed checksum verification", path)
		}
	}
	var fs fileSnapshot
	dec := gob.NewDecoder(bytes.NewReader(body))
	if err := dec.Decode(&fs); err != nil {
		return nil, fmt.Errorf("threev: decode snapshot: %w", err)
	}
	if fs.Magic != snapshotMagic {
		return nil, fmt.Errorf("threev: %q is not a threev snapshot (magic %q)", path, fs.Magic)
	}
	if fs.State == nil || fs.State.Nodes <= 0 {
		return nil, fmt.Errorf("threev: snapshot %q has no state", path)
	}
	return fs.State, nil
}
