package threev

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.snap")

	// Build state across two versions: one published epoch and one
	// pending update epoch.
	db := openTestDB(t, Config{})
	db.Preload(0, "a", map[string]int64{"bal": 0})
	db.Preload(1, "b", map[string]int64{"bal": 0})
	h, _ := db.Submit(At(0).Add("a", "bal", 5).Child(At(1).Add("b", "bal", 7)).Update())
	h.Wait()
	db.Advance() // published: a=5@v1, b=7@v1
	h2, _ := db.Submit(At(0).Add("a", "bal", 100).Update())
	h2.Wait() // pending in v2
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	seqBefore := db.CommittedUpdates()
	_ = seqBefore
	db.Close()

	// Reopen and verify both the published and the pending state.
	db2, err := OpenSnapshot(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if vr, vu := db2.Versions(); vr != 1 || vu != 2 {
		t.Fatalf("restored versions vr=%d vu=%d, want 1/2", vr, vu)
	}
	q, _ := db2.Submit(At(0).Read("a").Child(At(1).Read("b")).Query())
	q.Wait()
	got := map[string]int64{}
	for _, r := range q.Reads() {
		got[r.Key] = r.Record.Field("bal")
	}
	if got["a"] != 5 || got["b"] != 7 {
		t.Errorf("restored published state = %v, want a=5 b=7", got)
	}
	// The pending version-2 update becomes visible after the next
	// advancement — the restored cluster keeps operating normally.
	db2.Advance()
	q2, _ := db2.Submit(At(0).Read("a").Query())
	q2.Wait()
	if bal := q2.Reads()[0].Record.Field("bal"); bal != 105 {
		t.Errorf("restored pending state = %d, want 105", bal)
	}
	// New transactions and further advancements work.
	h3, _ := db2.Submit(At(1).Add("b", "bal", 1).Update())
	h3.Wait()
	db2.Advance()
	q3, _ := db2.Submit(At(1).Read("b").Query())
	q3.Wait()
	if bal := q3.Reads()[0].Record.Field("bal"); bal != 8 {
		t.Errorf("post-restore update = %d, want 8", bal)
	}
	if v := db2.Violations(); v != nil {
		t.Errorf("violations after restore: %v", v)
	}
}

func TestSnapshotRefusedWhileInFlight(t *testing.T) {
	db := openTestDB(t, Config{NetworkLatency: 5 * time.Millisecond})
	db.Preload(0, "a", map[string]int64{"bal": 0})
	db.Preload(1, "b", map[string]int64{"bal": 0})
	// Multi-node update still in flight (high latency, no wait).
	if _, err := db.Submit(At(0).Add("a", "bal", 1).
		Child(At(1).Add("b", "bal", 1)).Update()); err != nil {
		t.Fatal(err)
	}
	err := db.SaveSnapshot(filepath.Join(t.TempDir(), "x.snap"))
	if err == nil {
		t.Fatal("snapshot of a non-quiescent database accepted")
	}
	if !strings.Contains(err.Error(), "refused") {
		t.Errorf("error = %v, want a refusal", err)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.snap")
	db := openTestDB(t, Config{})
	db.Preload(0, "a", map[string]int64{"bal": 3})
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the middle: checksum must catch it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(bad, Config{}); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted snapshot error = %v, want checksum failure", err)
	}

	// Truncated file.
	if err := os.WriteFile(bad, raw[:2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(bad, Config{}); err == nil {
		t.Error("truncated snapshot accepted")
	}

	// Not a snapshot at all.
	if err := os.WriteFile(bad, []byte("hello world, definitely not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(bad, Config{}); err == nil {
		t.Error("garbage file accepted")
	}

	// Missing file.
	if _, err := OpenSnapshot(filepath.Join(dir, "nope.snap"), Config{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSnapshotNodeCountMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.snap")
	db := openTestDB(t, Config{Nodes: 3})
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(path, Config{Nodes: 5}); err == nil {
		t.Error("node-count mismatch accepted")
	}
	// Zero means "take it from the snapshot".
	db2, err := OpenSnapshot(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	db2.Close()
}
