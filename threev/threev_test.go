package threev

import (
	"testing"
	"time"
)

func openTestDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 3
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := openTestDB(t, Config{})
	db.Preload(0, "radiology-7", map[string]int64{"due": 0})
	db.Preload(1, "patient-7", map[string]int64{"due": 0})

	h, err := db.Submit(At(0).
		Add("radiology-7", "due", 120).
		Child(At(1).Add("patient-7", "due", 80)).
		Update())
	if err != nil {
		t.Fatal(err)
	}
	if !h.WaitTimeout(5 * time.Second) {
		t.Fatal("update did not complete")
	}
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v", h.Status())
	}

	db.Advance()

	q, err := db.Submit(At(1).Read("patient-7").Query())
	if err != nil {
		t.Fatal(err)
	}
	if !q.WaitTimeout(5 * time.Second) {
		t.Fatal("query did not complete")
	}
	reads := q.Reads()
	if len(reads) != 1 || reads[0].Record.Field("due") != 80 {
		t.Fatalf("reads = %v", reads)
	}
	if vr, vu := db.Versions(); vr != 1 || vu != 2 {
		t.Errorf("versions = %d/%d, want 1/2", vr, vu)
	}
	if db.MaxLiveVersions() > 3 {
		t.Errorf("MaxLiveVersions = %d", db.MaxLiveVersions())
	}
	if v := db.Violations(); v != nil {
		t.Errorf("violations: %v", v)
	}
	if len(db.AdvanceHistory()) != 1 {
		t.Error("advance history missing")
	}
	m := db.Metrics()
	if m.Transport.Messages == 0 {
		t.Error("no transport accounting")
	}
}

func TestBuilderProducesValidSpecs(t *testing.T) {
	spec := At(0).Read("a").Add("b", "f", 1).
		Child(At(1).Insert("c", Tuple{Txn: 1, Part: 1, Total: 1, Attr: "x", Amount: 2})).
		Update()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.ReadOnly() {
		t.Error("update tree classified read-only")
	}
	q := At(2).Read("z").Query()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if !q.ReadOnly() {
		t.Error("query tree not read-only")
	}
	nc := At(0).Set("a", "f", 9).NonCommuting()
	if err := nc.Validate(); err != nil {
		t.Fatal(err)
	}
	sc := At(0).Scale("a", "f", 11, 10).NonCommuting()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	lbl := At(0).Add("a", "f", 1).Labeled("tag", false)
	if lbl.Label != "tag" {
		t.Error("label lost")
	}
	ab := At(0).Add("a", "f", 1).Abort().Update()
	if !ab.Root.Abort {
		t.Error("abort flag lost")
	}
	if s := At(0).Add("k", "f", 1).String(); s == "" {
		t.Error("empty builder String")
	}
}

func TestSetWithoutNCModeRejected(t *testing.T) {
	db := openTestDB(t, Config{})
	_, err := db.Submit(At(0).Set("a", "f", 1).NonCommuting())
	if err == nil {
		t.Fatal("non-commuting transaction accepted without Config.NonCommuting")
	}
}

func TestNonCommutingEndToEnd(t *testing.T) {
	db := openTestDB(t, Config{NonCommuting: true})
	db.Preload(0, "price", map[string]int64{"cents": 1000})
	h, err := db.Submit(At(0).Set("price", "cents", 1500).NonCommuting())
	if err != nil {
		t.Fatal(err)
	}
	if !h.WaitTimeout(5 * time.Second) {
		t.Fatal("NC txn did not complete")
	}
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v", h.Status())
	}
	db.Advance()
	q, _ := db.Submit(At(0).Read("price").Query())
	q.Wait()
	if got := q.Reads()[0].Record.Field("cents"); got != 1500 {
		t.Errorf("price = %d, want 1500", got)
	}
}

func TestAutoAdvance(t *testing.T) {
	db := openTestDB(t, Config{})
	db.Preload(0, "k", map[string]int64{"v": 0})
	db.StartAutoAdvance(10 * time.Millisecond)
	db.StartAutoAdvance(10 * time.Millisecond) // idempotent
	h, _ := db.Submit(At(0).Add("k", "v", 7).Update())
	h.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		q, _ := db.Submit(At(0).Read("k").Query())
		q.Wait()
		if q.Reads()[0].Record.Field("v") == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-advance never published the update")
		}
		time.Sleep(5 * time.Millisecond)
	}
	db.StopAutoAdvance()
	db.StopAutoAdvance() // idempotent
	if len(db.AdvanceHistory()) == 0 {
		t.Error("no advancement cycles recorded")
	}
}

func TestCompensationThroughPublicAPI(t *testing.T) {
	db := openTestDB(t, Config{})
	db.Preload(0, "x", map[string]int64{"v": 0})
	db.Preload(1, "y", map[string]int64{"v": 0})
	h, err := db.Submit(At(0).Add("x", "v", 3).Abort().
		Child(At(1).Add("y", "v", 4)).Update())
	if err != nil {
		t.Fatal(err)
	}
	h.Wait()
	if h.Status() != StatusCompensated {
		t.Fatalf("status = %v, want compensated", h.Status())
	}
	db.Advance()
	q, _ := db.Submit(At(0).Read("x").Child(At(1).Read("y")).Query())
	q.Wait()
	for _, r := range q.Reads() {
		if r.Record.Field("v") != 0 {
			t.Errorf("%s = %d after compensation, want 0", r.Key, r.Record.Field("v"))
		}
	}
}

func TestOpenRejectsBadConfig(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open with zero nodes succeeded")
	}
}
