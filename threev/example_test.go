package threev_test

import (
	"fmt"
	"log"
	"os"

	"repro/threev"
)

// Example reproduces the paper's motivating scenario end to end: a
// hospital visit recorded across two departments' databases with zero
// coordination, invisible to readers until a version advancement, then
// visible atomically.
func Example() {
	db, err := threev.Open(threev.Config{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	db.Preload(0, "patient-7", map[string]int64{"due": 0})
	db.Preload(1, "patient-7", map[string]int64{"due": 0})

	visit := threev.At(2).
		Child(threev.At(0).Add("patient-7", "due", 120)).
		Child(threev.At(1).Add("patient-7", "due", 80)).
		Update()
	h, err := db.Submit(visit)
	if err != nil {
		log.Fatal(err)
	}
	h.Wait()

	sum := func() int64 {
		q, err := db.Submit(threev.At(0).Read("patient-7").
			Child(threev.At(1).Read("patient-7")).Query())
		if err != nil {
			log.Fatal(err)
		}
		q.Wait()
		var total int64
		for _, r := range q.Reads() {
			total += r.Record.Field("due")
		}
		return total
	}

	fmt.Println("before advancement:", sum())
	db.Advance()
	fmt.Println("after advancement:", sum())
	// Output:
	// before advancement: 0
	// after advancement: 200
}

// ExampleSub shows the transaction-tree builder: reads and commuting
// updates at several nodes, finalized as an update transaction.
func ExampleSub() {
	spec := threev.At(0).
		Read("inventory").
		Add("inventory", "sold", 1).
		Child(threev.At(1).Add("inventory", "sold", 1)).
		Update()
	fmt.Println(spec.ReadOnly(), spec.WellBehaved(), len(spec.Root.Children))
	// Output: false true 1
}

// ExampleDB_StartPolicy drives advancement with the paper's
// "once a certain number of update transactions have accumulated"
// policy.
func ExampleDB_StartPolicy() {
	db, err := threev.Open(threev.Config{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	db.Preload(0, "k", map[string]int64{"n": 0})

	db.StartPolicy(1e6 /* ns */, threev.EveryNUpdates(5))
	for i := 0; i < 5; i++ {
		h, err := db.Submit(threev.At(0).Add("k", "n", 1).Update())
		if err != nil {
			log.Fatal(err)
		}
		h.Wait()
	}
	// Wait until the policy publishes the updates.
	for {
		q, err := db.Submit(threev.At(0).Read("k").Query())
		if err != nil {
			log.Fatal(err)
		}
		q.Wait()
		if q.Reads()[0].Record.Field("n") == 5 {
			fmt.Println("published:", q.Reads()[0].Record.Field("n"))
			break
		}
	}
	// Output: published: 5
}

// ExampleDB_SaveSnapshot persists a quiesced database and reopens it.
func ExampleDB_SaveSnapshot() {
	db, err := threev.Open(threev.Config{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	db.Preload(0, "acct", map[string]int64{"bal": 0})
	h, err := db.Submit(threev.At(0).Add("acct", "bal", 42).Update())
	if err != nil {
		log.Fatal(err)
	}
	h.Wait()
	db.Advance()

	path := fmt.Sprintf("%s/demo.snap", tempDir())
	if err := db.SaveSnapshot(path); err != nil {
		log.Fatal(err)
	}
	db.Close()

	db2, err := threev.OpenSnapshot(path, threev.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	q, err := db2.Submit(threev.At(0).Read("acct").Query())
	if err != nil {
		log.Fatal(err)
	}
	q.Wait()
	fmt.Println("restored balance:", q.Reads()[0].Record.Field("bal"))
	// Output: restored balance: 42
}

// tempDir gives examples a writable scratch directory.
func tempDir() string {
	d, err := os.MkdirTemp("", "threev-example-*")
	if err != nil {
		log.Fatal(err)
	}
	return d
}
