// Package threev is the public API of this reproduction of the 3V
// algorithm from Jagadish, Mumick & Rabinovich, "Scalable Versioning in
// Distributed Databases with Commuting Updates" (ICDE 1997).
//
// A DB is a simulated distributed database: a set of nodes, each owning
// a fragment of the data, connected by an asynchronous in-process
// network. Update transactions whose operations commute (increments,
// tuple inserts) execute with no global synchronization whatsoever;
// read-only transactions never take locks and never wait; and version
// advancement — the process that makes recent updates visible to
// readers — runs fully asynchronously with user transactions
// (Theorem 4.2 of the paper).
//
// Quick start:
//
//	db, _ := threev.Open(threev.Config{Nodes: 3})
//	defer db.Close()
//	db.Preload(1, "patient-7", map[string]int64{"due": 0})
//
//	// Record charges on two departments' databases in one transaction.
//	h, _ := db.Submit(threev.At(0).
//		Add("radiology-7", "due", 120).
//		Child(threev.At(1).Add("patient-7", "due", 80)).
//		Update())
//	h.Wait()
//
//	db.Advance() // publish version 1 to readers
//
//	q, _ := db.Submit(threev.At(1).Read("patient-7").Query())
//	q.Wait()
//	fmt.Println(q.Reads()[0].Record.Field("due")) // 80
//
// Note on layering: in this repository the protocol lives in
// internal/core and the data model in internal/model; this package
// re-exports the handful of model types a client needs. A standalone
// release would promote those packages out of internal/.
package threev

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/reliable"
)

// Re-exported model types; see the package comment on layering.
type (
	// NodeID identifies a database node.
	NodeID = model.NodeID
	// Version is a data/transaction version number.
	Version = model.Version
	// TxnID identifies a global transaction.
	TxnID = model.TxnID
	// Record is a versioned data item's value.
	Record = model.Record
	// Tuple is one entry of a record's append-only log.
	Tuple = model.Tuple
	// ReadResult is one read observation returned by a query.
	ReadResult = model.ReadResult
	// TxnSpec is the explicit transaction-tree form accepted by Submit;
	// most callers use the Sub builder instead.
	TxnSpec = model.TxnSpec
	// Handle observes a submitted transaction.
	Handle = core.Handle
	// Status is a transaction outcome.
	Status = core.Status
	// AdvanceReport describes one version-advancement cycle.
	AdvanceReport = core.AdvanceReport
	// Metrics aggregates cluster accounting.
	Metrics = core.ClusterMetrics
	// ObsSnapshot is a point-in-time view of the observability layer:
	// latency histograms, phase timers, counters, gauges, counter lag.
	ObsSnapshot = obs.Snapshot
	// ObsEvent is one structured protocol event from the event log.
	ObsEvent = obs.Event
)

// Transaction outcomes (re-exported).
const (
	StatusPending     = core.StatusPending
	StatusCommitted   = core.StatusCommitted
	StatusCompensated = core.StatusCompensated
	StatusAborted     = core.StatusAborted
)

// Config parameterizes Open.
type Config struct {
	// Nodes is the number of database nodes (required).
	Nodes int
	// Workers is the per-node execution pool width; 0 means 4.
	Workers int
	// NonCommuting enables the NC3V extension, admitting transactions
	// built with Set/Scale that do not commute. It adds commute-lock
	// acquisition to well-behaved update transactions (never a wait
	// unless a non-commuting transaction is active).
	NonCommuting bool
	// LockWait bounds NC3V lock waits; 0 means one second.
	LockWait time.Duration
	// NetworkLatency and NetworkJitter shape the simulated network;
	// jitter > 0 allows message reordering.
	NetworkLatency time.Duration
	NetworkJitter  time.Duration
	// Seed makes jitter reproducible; 0 selects a fixed default. Fault
	// injection draws from the same seeded source.
	Seed int64
	// Faults injects network faults (drops, duplicates, partitions,
	// extra delay) per directed link; the zero value injects nothing.
	// Any nonzero drop rate requires Reliable, or the protocol can
	// wedge on a lost message.
	Faults transport.Faults
	// Reliable interposes the reliable-delivery session layer
	// (sequence numbers, dedup, cumulative acks, retransmission)
	// between the protocol and the network, restoring exactly-once
	// FIFO delivery over a faulty network.
	Reliable bool
	// ReliableConfig tunes retransmission when Reliable is set; the
	// zero value selects defaults.
	ReliableConfig reliable.Config
	// AckTimeout bounds every coordinator wait on node responses; when
	// exceeded, Advance returns a report with Err set (core.ErrTimeout)
	// instead of blocking forever. 0 means wait forever, the paper's
	// reliable-network behaviour.
	AckTimeout time.Duration
	// ResendInterval makes the coordinator re-broadcast unanswered
	// (idempotent) notices to silent nodes on this period; 0 means
	// never.
	ResendInterval time.Duration
	// PollInterval spaces the advancement coordinator's counter sweeps;
	// 0 means 200µs.
	PollInterval time.Duration
	// DisableObs turns the observability layer off entirely (no
	// histograms, no event log); Obs/ObsEvents then return zero values.
	DisableObs bool
	// Batching turns on end-to-end hot-path batching: the network
	// coalesces each link's frames into batched envelopes per flush
	// window, the reliable session (when enabled) flushes data in
	// batches with piggybacked, delayed acks, node workers admit work
	// in chunks that share one WAL barrier, and the coordinator's
	// quiescence sweeps use the batched counter protocol. Defaults:
	// 50µs flush window, admission chunks of 64 (except under
	// NonCommuting, where chunked admission is disabled).
	Batching bool
	// BatchWindow overrides the batching flush window (0 = the 50µs
	// default). Only meaningful with Batching set.
	BatchWindow time.Duration
	// ExecChunk overrides the admission chunk size (0 = the default of
	// 64). Only meaningful with Batching set.
	ExecChunk int
	// PerBatchLatency charges the simulated per-message network latency
	// and jitter once per batched envelope instead of once per member —
	// the model of a transport whose per-message cost is dominated by
	// per-packet overhead. Used by the jitter-ablation benchmark; only
	// meaningful with Batching set.
	PerBatchLatency bool
}

// DB is a running 3V database.
type DB struct {
	cluster *core.Cluster

	autoMu   sync.Mutex
	autoStop chan struct{}
	autoWG   sync.WaitGroup
	policy   *policyLoop
}

// Open builds and starts a DB.
func Open(cfg Config) (*DB, error) {
	nc := transport.Config{
		BaseLatency: cfg.NetworkLatency,
		Jitter:      cfg.NetworkJitter,
		Seed:        cfg.Seed,
		Faults:      cfg.Faults,
	}
	rc := cfg.ReliableConfig
	execChunk := 0
	batchedCounters := false
	if cfg.Batching {
		window := cfg.BatchWindow
		if window <= 0 {
			window = 50 * time.Microsecond
		}
		nc.BatchWindow = window
		nc.PerBatchLatency = cfg.PerBatchLatency
		if cfg.Reliable && rc.FlushInterval <= 0 {
			rc.FlushInterval = window
		}
		if !cfg.NonCommuting {
			execChunk = cfg.ExecChunk
			if execChunk <= 0 {
				execChunk = 64
			}
		}
		batchedCounters = true
	}
	c, err := core.NewCluster(core.Config{
		Nodes:           cfg.Nodes,
		Workers:         cfg.Workers,
		NCMode:          cfg.NonCommuting,
		LockWait:        cfg.LockWait,
		PollInterval:    cfg.PollInterval,
		Reliable:        cfg.Reliable,
		ReliableConfig:  rc,
		AckTimeout:      cfg.AckTimeout,
		ResendInterval:  cfg.ResendInterval,
		DisableObs:      cfg.DisableObs,
		ExecChunk:       execChunk,
		BatchedCounters: batchedCounters,
		NetConfig:       nc,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{cluster: c}
	c.Start()
	return db, nil
}

// Close stops auto-advancement and any policy loop, then shuts the
// database down. Wait for outstanding handles first.
func (db *DB) Close() {
	db.StopAutoAdvance()
	db.StopPolicy()
	db.cluster.Close()
}

// Preload installs an initial version-0 record at a node; call before
// submitting transactions that touch it. (Items can also be created on
// first write.)
func (db *DB) Preload(node NodeID, key string, fields map[string]int64) {
	rec := model.NewRecord()
	for k, v := range fields {
		rec.Fields[k] = v
	}
	db.cluster.Preload(node, key, rec)
}

// Submit validates and launches a transaction built with the Sub
// builder (or an explicit TxnSpec via SubmitSpec).
func (db *DB) Submit(spec *TxnSpec) (*Handle, error) {
	return db.cluster.Submit(spec)
}

// SubmitBatch validates and launches a group of transactions in one
// admission flush: all specs are validated before any is launched, and
// roots bound for the same node travel in one batched envelope.
// Semantically equivalent to a loop of Submit calls — each member is
// still an independent transaction with its own handle — but the hot
// path pays per-destination, not per-transaction, costs.
func (db *DB) SubmitBatch(specs []*TxnSpec) ([]*Handle, error) {
	return db.cluster.SubmitBatch(specs)
}

// Advance runs one version-advancement cycle: new updates start
// accumulating in a fresh version, the previous update version is
// published to readers once globally consistent, and superseded
// versions are garbage collected. It blocks until the cycle completes
// but never delays any user transaction.
func (db *DB) Advance() AdvanceReport {
	return db.cluster.Advance()
}

// StartAutoAdvance runs Advance on a fixed interval until
// StopAutoAdvance or Close — the paper's "advance versions every hour"
// policy, at simulation timescales.
func (db *DB) StartAutoAdvance(interval time.Duration) {
	db.autoMu.Lock()
	defer db.autoMu.Unlock()
	if db.autoStop != nil {
		return
	}
	stop := make(chan struct{})
	db.autoStop = stop
	db.autoWG.Add(1)
	go func() {
		defer db.autoWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				db.cluster.Advance()
			}
		}
	}()
}

// StopAutoAdvance halts the auto-advancement loop, waiting for any
// in-flight cycle to finish.
func (db *DB) StopAutoAdvance() {
	db.autoMu.Lock()
	stop := db.autoStop
	db.autoStop = nil
	db.autoMu.Unlock()
	if stop != nil {
		close(stop)
		db.autoWG.Wait()
	}
}

// Versions returns the coordinator's view of the current (read, update)
// versions.
func (db *DB) Versions() (vr, vu Version) {
	return db.cluster.Coordinator().Versions()
}

// Metrics returns a snapshot of protocol, storage and transport
// accounting.
func (db *DB) Metrics() Metrics { return db.cluster.Metrics() }

// Obs returns a snapshot of the observability layer: transaction and
// per-hop latency quantiles, advancement phase timings, protocol event
// counters, version gauges and live counter-lag samples. Zero value if
// the database was opened with DisableObs.
func (db *DB) Obs() ObsSnapshot { return db.cluster.ObsSnapshot() }

// ObsEvents returns the retained structured protocol events
// (oldest first). Nil if the database was opened with DisableObs.
func (db *DB) ObsEvents() []ObsEvent { return db.cluster.ObsEvents() }

// AdvanceHistory returns reports of all completed advancement cycles.
func (db *DB) AdvanceHistory() []AdvanceReport {
	return db.cluster.Coordinator().History()
}

// Violations returns any recorded protocol-invariant violations; a
// correct run returns nil.
func (db *DB) Violations() []string { return db.cluster.Violations() }

// ConvergenceErrors checks, once activity has drained, that every node
// agrees with the coordinator on (vr, vu) and that all live counter
// matrices balance. Nil means the cluster converged — the property a
// chaos run must restore after faults heal.
func (db *DB) ConvergenceErrors() []string { return db.cluster.ConvergenceErrors() }

// Faults returns the runtime fault controls of the underlying network
// (nil if the transport does not inject faults — e.g. a custom
// scripted transport).
func (db *DB) Faults() transport.FaultInjector {
	if fi, ok := db.cluster.Network().(transport.FaultInjector); ok {
		return fi
	}
	return nil
}

// MaxLiveVersions returns the largest number of simultaneously live
// versions any item ever had (the paper bounds it by three).
func (db *DB) MaxLiveVersions() int { return db.cluster.MaxLiveVersionsEver() }

// Cluster exposes the underlying core cluster for advanced
// instrumentation (benchmark harness, verifiers).
func (db *DB) Cluster() *core.Cluster { return db.cluster }

// Sub builds one subtransaction of a transaction tree. Builders are
// single-use: Build/Update/Query consume them.
type Sub struct {
	spec *model.SubtxnSpec
}

// At starts a subtransaction executing on the given node.
func At(node NodeID) *Sub {
	return &Sub{spec: &model.SubtxnSpec{Node: node}}
}

// Read adds local keys to read.
func (s *Sub) Read(keys ...string) *Sub {
	s.spec.Reads = append(s.spec.Reads, keys...)
	return s
}

// Add applies a commuting increment to a record's summary field.
func (s *Sub) Add(key, field string, delta int64) *Sub {
	s.spec.Updates = append(s.spec.Updates, model.KeyOp{Key: key, Op: model.AddOp{Field: field, Delta: delta}})
	return s
}

// Insert appends a tuple to a record's log (a commuting recording
// operation). The caller controls the tuple's identity fields; the
// verification tooling uses Part/Total to audit atomic visibility.
func (s *Sub) Insert(key string, t Tuple) *Sub {
	s.spec.Updates = append(s.spec.Updates, model.KeyOp{Key: key, Op: model.AppendOp{T: t}})
	return s
}

// Set overwrites a summary field — a NON-commuting operation. A tree
// containing Set must be submitted with NonCommuting() and requires
// Config.NonCommuting.
func (s *Sub) Set(key, field string, value int64) *Sub {
	s.spec.Updates = append(s.spec.Updates, model.KeyOp{Key: key, Op: model.SetOp{Field: field, Value: value}})
	return s
}

// Scale multiplies a summary field by num/den — a NON-commuting
// operation (e.g. applying a surcharge percentage).
func (s *Sub) Scale(key, field string, num, den int64) *Sub {
	s.spec.Updates = append(s.spec.Updates, model.KeyOp{Key: key, Op: model.ScaleOp{Field: field, Num: num, Den: den}})
	return s
}

// Op appends a raw model operation (escape hatch for custom commuting
// operations).
func (s *Sub) Op(key string, op model.Op) *Sub {
	s.spec.Updates = append(s.spec.Updates, model.KeyOp{Key: key, Op: op})
	return s
}

// Child attaches a child subtransaction, sent to its node after this
// subtransaction's local work.
func (s *Sub) Child(c *Sub) *Sub {
	s.spec.Children = append(s.spec.Children, c.spec)
	return s
}

// Abort marks this subtransaction to abort after executing, triggering
// compensation of its subtree (fault injection).
func (s *Sub) Abort() *Sub {
	s.spec.Abort = true
	return s
}

// Update finalizes the tree as a well-behaved (commuting) update
// transaction.
func (s *Sub) Update() *TxnSpec {
	return &model.TxnSpec{Root: s.spec}
}

// Query finalizes the tree as a read-only transaction.
func (s *Sub) Query() *TxnSpec {
	return &model.TxnSpec{Root: s.spec}
}

// NonCommuting finalizes the tree as a non-well-behaved transaction to
// be executed under NC3V.
func (s *Sub) NonCommuting() *TxnSpec {
	return &model.TxnSpec{Root: s.spec, NonCommuting: true}
}

// Labeled finalizes with a label for traces and diagnostics.
func (s *Sub) Labeled(label string, nonCommuting bool) *TxnSpec {
	return &model.TxnSpec{Root: s.spec, Label: label, NonCommuting: nonCommuting}
}

// String renders the builder's current tree.
func (s *Sub) String() string {
	return fmt.Sprintf("%v", (&model.TxnSpec{Root: s.spec}).String())
}
